package ir

import (
	"fmt"

	"heisendump/internal/lang"
)

// Options controls compilation.
type Options struct {
	// InstrumentLoops adds a synthetic iteration counter to every while
	// loop (counted `for` loops already carry one in their loop
	// variable). The counters are what lets the analysis reverse
	// engineer loop iteration counts from a core dump; emitting them is
	// the only production-run instrumentation the technique needs.
	InstrumentLoops bool
}

// Compile lowers a checked program to the flat instruction form.
func Compile(p *lang.Program, opts Options) (*Program, error) {
	if err := lang.Check(p); err != nil {
		return nil, err
	}
	out := &Program{
		Name:         p.Name,
		Globals:      p.Globals,
		Locks:        p.Locks,
		funcIndex:    make(map[string]int, len(p.Funcs)),
		globalIndex:  map[string]int{},
		arrayIndex:   map[string]int{},
		lockIndex:    make(map[string]int, len(p.Locks)),
		Instrumented: opts.InstrumentLoops,
	}
	for i, f := range p.Funcs {
		out.funcIndex[f.Name] = i
	}
	// Intern globals, arrays and locks into the dense slot tables; the
	// expression resolver below compiles every variable access down to
	// an index into them.
	for _, g := range p.Globals {
		if g.ArraySize > 0 {
			out.arrayIndex[g.Name] = len(out.ArrayNames)
			out.ArrayNames = append(out.ArrayNames, g.Name)
			out.ArrayDecls = append(out.ArrayDecls, g)
		} else {
			out.globalIndex[g.Name] = len(out.ScalarNames)
			out.ScalarNames = append(out.ScalarNames, g.Name)
			out.ScalarDecls = append(out.ScalarDecls, g)
		}
	}
	for i, l := range p.Locks {
		out.lockIndex[l] = i
	}
	for _, f := range p.Funcs {
		cf, err := compileFunc(f, opts)
		if err != nil {
			return nil, fmt.Errorf("ir: %s: %w", f.Name, err)
		}
		if err := out.resolveFunc(cf); err != nil {
			return nil, fmt.Errorf("ir: %s: %w", f.Name, err)
		}
		out.Funcs = append(out.Funcs, cf)
	}
	out.BC = compileBytecode(out)
	return out, nil
}

// MustCompile is Compile but panics on error.
func MustCompile(p *lang.Program, opts Options) *Program {
	cp, err := Compile(p, opts)
	if err != nil {
		panic(err)
	}
	return cp
}

// patchRef identifies one branch-target slot awaiting its destination.
type patchRef struct {
	idx     int
	isFalse bool
}

type loopCtx struct {
	breaks    []patchRef
	continues []patchRef
}

type fcomp struct {
	opts     Options
	fn       *Func
	instrs   []Instr
	localSet map[string]bool
	labels   map[string]int
	gotoRefs []struct {
		idx  int
		name string
		line int
	}
	loops     []*loopCtx // active loop stack
	nextLoop  int
	nextGroup int
}

func compileFunc(f *lang.Func, opts Options) (*Func, error) {
	c := &fcomp{
		opts:     opts,
		fn:       &Func{Name: f.Name, Groups: map[int]GroupInfo{}},
		localSet: map[string]bool{},
		labels:   map[string]int{},
	}
	for _, prm := range f.Params {
		c.fn.Params = append(c.fn.Params, prm.Name)
		c.addLocal(prm.Name)
	}
	if err := c.block(f.Body); err != nil {
		return nil, err
	}
	// Canonical function exit: a final return that also serves as the
	// merge target for patches that fall off the end of the body.
	line := 0
	if n := len(f.Body.Stmts); n > 0 {
		line = f.Body.Stmts[n-1].Line()
	}
	c.emit(Instr{Op: OpReturn, Line: line})
	for _, g := range c.gotoRefs {
		target, ok := c.labels[g.name]
		if !ok {
			return nil, fmt.Errorf("line %d: unresolved label %q", g.line, g.name)
		}
		c.instrs[g.idx].True = target
	}
	c.fn.Instrs = c.instrs
	return c.fn, nil
}

func (c *fcomp) addLocal(name string) {
	if !c.localSet[name] {
		c.localSet[name] = true
		c.fn.Locals = append(c.fn.Locals, name)
	}
}

func (c *fcomp) emit(in Instr) int {
	if in.Op != OpBranch {
		in.PredGroup = -1
		in.LoopID = -1
	}
	c.instrs = append(c.instrs, in)
	return len(c.instrs) - 1
}

func (c *fcomp) here() int { return len(c.instrs) }

func (c *fcomp) patch(refs []patchRef, target int) {
	for _, r := range refs {
		if r.isFalse {
			c.instrs[r.idx].False = target
		} else {
			c.instrs[r.idx].True = target
		}
	}
}

func (c *fcomp) block(b *lang.Block) error {
	for _, s := range b.Stmts {
		if err := c.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *fcomp) stmt(s lang.Stmt) error {
	switch s := s.(type) {
	case *lang.VarStmt:
		c.addLocal(s.Name)
		if s.Init != nil {
			c.emit(Instr{Op: OpAssign, Line: s.Line(), SrcLHS: &lang.VarLV{Name: s.Name}, SrcRHS: s.Init})
		}
		return nil

	case *lang.AssignStmt:
		c.noteLValue(s.LHS)
		c.emit(Instr{Op: OpAssign, Line: s.Line(), SrcLHS: s.LHS, SrcRHS: s.RHS})
		return nil

	case *lang.IfStmt:
		group := c.nextGroup
		c.nextGroup++
		tRefs, fRefs := c.condJump(s.Cond, group, s.Line())
		thenStart := c.here()
		c.patch(tRefs, thenStart)
		if err := c.block(s.Then); err != nil {
			return err
		}
		if s.Else == nil {
			c.patch(fRefs, c.here())
			c.fn.Groups[group] = GroupInfo{Then: thenStart, Else: c.here(), Line: s.Line()}
			return nil
		}
		endJump := c.emit(Instr{Op: OpJump, Line: s.Line()})
		elseStart := c.here()
		c.patch(fRefs, elseStart)
		if err := c.block(s.Else); err != nil {
			return err
		}
		c.instrs[endJump].True = c.here()
		c.fn.Groups[group] = GroupInfo{Then: thenStart, Else: elseStart, Line: s.Line()}
		return nil

	case *lang.WhileStmt:
		return c.whileLoop(s)

	case *lang.ForStmt:
		return c.forLoop(s)

	case *lang.CallStmt:
		if s.Result != nil {
			c.noteLValue(s.Result)
		}
		c.emit(Instr{Op: OpCall, Line: s.Line(), CalleeName: s.Name, SrcArgs: s.Args, SrcLHS: s.Result})
		return nil

	case *lang.ReturnStmt:
		c.emit(Instr{Op: OpReturn, Line: s.Line(), SrcRHS: s.Value})
		return nil

	case *lang.AcquireStmt:
		c.emit(Instr{Op: OpAcquire, Line: s.Line(), LockName: s.Lock})
		return nil

	case *lang.ReleaseStmt:
		c.emit(Instr{Op: OpRelease, Line: s.Line(), LockName: s.Lock})
		return nil

	case *lang.SpawnStmt:
		c.emit(Instr{Op: OpSpawn, Line: s.Line(), CalleeName: s.Func, SrcArgs: s.Args})
		return nil

	case *lang.AssertStmt:
		c.emit(Instr{Op: OpAssert, Line: s.Line(), SrcCond: s.Cond, Msg: s.Msg})
		return nil

	case *lang.OutputStmt:
		c.emit(Instr{Op: OpOutput, Line: s.Line(), SrcRHS: s.Value})
		return nil

	case *lang.LabelStmt:
		if _, dup := c.labels[s.Name]; dup {
			return fmt.Errorf("line %d: duplicate label %q", s.Line(), s.Name)
		}
		c.labels[s.Name] = c.here()
		return nil

	case *lang.GotoStmt:
		idx := c.emit(Instr{Op: OpJump, Line: s.Line()})
		c.gotoRefs = append(c.gotoRefs, struct {
			idx  int
			name string
			line int
		}{idx, s.Name, s.Line()})
		return nil

	case *lang.BreakStmt:
		if len(c.loops) == 0 {
			return fmt.Errorf("line %d: break outside loop", s.Line())
		}
		idx := c.emit(Instr{Op: OpJump, Line: s.Line()})
		top := c.loops[len(c.loops)-1]
		top.breaks = append(top.breaks, patchRef{idx: idx})
		return nil

	case *lang.ContinueStmt:
		if len(c.loops) == 0 {
			return fmt.Errorf("line %d: continue outside loop", s.Line())
		}
		idx := c.emit(Instr{Op: OpJump, Line: s.Line()})
		top := c.loops[len(c.loops)-1]
		top.continues = append(top.continues, patchRef{idx: idx})
		return nil
	}
	return fmt.Errorf("line %d: cannot compile %T", s.Line(), s)
}

func (c *fcomp) noteLValue(lv lang.LValue) {
	if v, ok := lv.(*lang.VarLV); ok {
		// Assignment may target a global; addLocal is only for names not
		// resolvable as globals. The interpreter resolves names locals-
		// first, so registering a global name here would shadow it.
		// lang.Check has already verified the name resolves; we only
		// need to ensure declared locals appear in Locals, which VarStmt
		// and params handle. So nothing to do for plain variables.
		_ = v
	}
}

// whileLoop compiles an uncounted loop. With instrumentation enabled the
// loop receives a synthetic counter:
//
//	__lcN = 0                 (Synth)
//	head:  branch cond -> body, exit     (LoopID = N)
//	body:  __lcN = __lcN + 1  (Synth)
//	       ...body...
//	       jump head
//	exit:
//
// The loop head is always a single branch instruction — loop conditions
// are evaluated whole rather than lowered to short-circuit chains — so
// an n-iteration loop contributes a run of n identical loop-predicate
// entries to the execution index, matching the paper's §3.2 model.
func (c *fcomp) whileLoop(s *lang.WhileStmt) error {
	id := c.nextLoop
	c.nextLoop++
	loop := &Loop{ID: id, Line: s.Line(), Counted: false}

	if c.opts.InstrumentLoops {
		counter := fmt.Sprintf("__lc%d", id)
		c.addLocal(counter)
		loop.CounterVar = counter
		c.emit(Instr{Op: OpAssign, Line: s.Line(), Synth: true,
			SrcLHS: &lang.VarLV{Name: counter}, SrcRHS: &lang.IntLit{Value: 0}})
	}

	head := c.here()
	loop.HeadPC = head
	group := c.nextGroup
	c.nextGroup++
	branch := c.emit(Instr{Op: OpBranch, Line: s.Line(), SrcCond: s.Cond,
		PredGroup: group, LoopID: id})
	c.instrs[branch].True = c.here()

	if loop.CounterVar != "" {
		cv := loop.CounterVar
		c.emit(Instr{Op: OpAssign, Line: s.Line(), Synth: true,
			SrcLHS: &lang.VarLV{Name: cv},
			SrcRHS: &lang.BinaryExpr{Op: "+", X: &lang.VarRef{Name: cv}, Y: &lang.IntLit{Value: 1}}})
	}

	c.loops = append(c.loops, &loopCtx{})
	err := c.block(s.Body)
	ctx := c.loops[len(c.loops)-1]
	c.loops = c.loops[:len(c.loops)-1]
	if err != nil {
		return err
	}
	c.patch(ctx.continues, head)
	c.emit(Instr{Op: OpJump, Line: s.Line(), True: head})
	exit := c.here()
	c.instrs[branch].False = exit
	c.patch(ctx.breaks, exit)
	c.fn.Groups[group] = GroupInfo{Then: c.instrs[branch].True, Else: exit, Line: s.Line()}
	c.fn.Loops = append(c.fn.Loops, loop)
	return nil
}

// forLoop compiles a counted loop:
//
//	__fromN = From
//	i       = __fromN
//	__toN   = To
//	head:  branch i <= __toN -> body, exit   (LoopID = N)
//	body:  ...body...
//	inc:   i = i + 1
//	       jump head
//	exit:
//
// The loop variable is an intrinsic counter: at any point inside the
// body the iteration number is i - __fromN + 1, recoverable from a core
// dump without instrumentation.
func (c *fcomp) forLoop(s *lang.ForStmt) error {
	id := c.nextLoop
	c.nextLoop++
	fromVar := fmt.Sprintf("__from%d", id)
	toVar := fmt.Sprintf("__to%d", id)
	c.addLocal(s.Var)
	c.addLocal(fromVar)
	c.addLocal(toVar)

	c.emit(Instr{Op: OpAssign, Line: s.Line(), SrcLHS: &lang.VarLV{Name: fromVar}, SrcRHS: s.From})
	c.emit(Instr{Op: OpAssign, Line: s.Line(), SrcLHS: &lang.VarLV{Name: s.Var}, SrcRHS: &lang.VarRef{Name: fromVar}})
	c.emit(Instr{Op: OpAssign, Line: s.Line(), SrcLHS: &lang.VarLV{Name: toVar}, SrcRHS: s.To})

	head := c.here()
	group := c.nextGroup
	c.nextGroup++
	cond := &lang.BinaryExpr{Op: "<=", X: &lang.VarRef{Name: s.Var}, Y: &lang.VarRef{Name: toVar}}
	branch := c.emit(Instr{Op: OpBranch, Line: s.Line(), SrcCond: cond, PredGroup: group, LoopID: id})
	c.instrs[branch].True = c.here()

	c.loops = append(c.loops, &loopCtx{})
	err := c.block(s.Body)
	ctx := c.loops[len(c.loops)-1]
	c.loops = c.loops[:len(c.loops)-1]
	if err != nil {
		return err
	}
	inc := c.here()
	c.patch(ctx.continues, inc)
	c.emit(Instr{Op: OpAssign, Line: s.Line(), SrcLHS: &lang.VarLV{Name: s.Var},
		SrcRHS: &lang.BinaryExpr{Op: "+", X: &lang.VarRef{Name: s.Var}, Y: &lang.IntLit{Value: 1}}})
	c.emit(Instr{Op: OpJump, Line: s.Line(), True: head})
	exit := c.here()
	c.instrs[branch].False = exit
	c.patch(ctx.breaks, exit)
	c.fn.Groups[group] = GroupInfo{Then: c.instrs[branch].True, Else: exit, Line: s.Line()}

	c.fn.Loops = append(c.fn.Loops, &Loop{
		ID: id, HeadPC: head, Line: s.Line(),
		Counted: true, CounterVar: s.Var, FromVar: fromVar,
	})
	return nil
}

// condJump lowers a conditional-statement guard to a chain of branch
// instructions implementing short-circuit evaluation. Every branch in
// the chain carries the same PredGroup, which is what makes the
// resulting multiple control dependences "aggregatable to one" complex
// predicate during index reverse engineering.
//
// It returns the patch lists for the true and false exits of the chain.
func (c *fcomp) condJump(e lang.Expr, group, line int) (tRefs, fRefs []patchRef) {
	switch e := e.(type) {
	case *lang.BinaryExpr:
		switch e.Op {
		case "&&":
			tX, fX := c.condJump(e.X, group, line)
			c.patch(tX, c.here())
			tY, fY := c.condJump(e.Y, group, line)
			return tY, append(fX, fY...)
		case "||":
			tX, fX := c.condJump(e.X, group, line)
			c.patch(fX, c.here())
			tY, fY := c.condJump(e.Y, group, line)
			return append(tX, tY...), fY
		}
	case *lang.UnaryExpr:
		if e.Op == "!" {
			t, f := c.condJump(e.X, group, line)
			return f, t
		}
	}
	idx := c.emit(Instr{Op: OpBranch, Line: line, SrcCond: e, PredGroup: group, LoopID: -1})
	return []patchRef{{idx: idx}}, []patchRef{{idx: idx, isFalse: true}}
}
