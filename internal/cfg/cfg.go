// Package cfg builds intraprocedural control-flow graphs over compiled
// functions. Node i is instruction i; node len(Instrs) is a virtual
// exit that every return reaches, giving the post-dominator analysis a
// single sink.
package cfg

import "heisendump/internal/ir"

// Graph is the control-flow graph of one function.
type Graph struct {
	// Fn is the function the graph describes.
	Fn *ir.Func
	// Succs[i] are the successor nodes of instruction i.
	Succs [][]int
	// Preds[i] are the predecessor nodes of instruction i.
	Preds [][]int
	// Exit is the virtual exit node id (== len(Fn.Instrs)).
	Exit int
}

// Build constructs the CFG of f.
func Build(f *ir.Func) *Graph {
	n := len(f.Instrs)
	g := &Graph{
		Fn:    f,
		Succs: make([][]int, n+1),
		Preds: make([][]int, n+1),
		Exit:  n,
	}
	addEdge := func(u, v int) {
		g.Succs[u] = append(g.Succs[u], v)
		g.Preds[v] = append(g.Preds[v], u)
	}
	for i := range f.Instrs {
		in := &f.Instrs[i]
		switch in.Op {
		case ir.OpBranch:
			addEdge(i, in.True)
			if in.False != in.True {
				addEdge(i, in.False)
			}
		case ir.OpJump:
			addEdge(i, in.True)
		case ir.OpReturn:
			addEdge(i, g.Exit)
		default:
			addEdge(i, i+1)
		}
	}
	return g
}

// NumNodes returns the node count including the virtual exit.
func (g *Graph) NumNodes() int { return g.Exit + 1 }

// ReachableFromEntry returns the set of nodes reachable from
// instruction 0 (the function entry).
func (g *Graph) ReachableFromEntry() []bool {
	seen := make([]bool, g.NumNodes())
	stack := []int{0}
	seen[0] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.Succs[u] {
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return seen
}

// ReachesExit returns the set of nodes from which the virtual exit is
// reachable. Nodes outside this set (e.g. bodies of `while(true)` loops
// with no break) have no post-dominators.
func (g *Graph) ReachesExit() []bool {
	seen := make([]bool, g.NumNodes())
	stack := []int{g.Exit}
	seen[g.Exit] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.Preds[u] {
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return seen
}
