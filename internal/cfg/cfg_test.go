package cfg_test

import (
	"testing"

	"heisendump/internal/cfg"
	"heisendump/internal/ir"
	"heisendump/internal/lang"
	"heisendump/internal/workloads"
)

func build(t testing.TB, src, fn string) (*ir.Func, *cfg.Graph) {
	t.Helper()
	cp, err := ir.Compile(lang.MustParse(src), ir.Options{InstrumentLoops: true})
	if err != nil {
		t.Fatal(err)
	}
	f := cp.Funcs[cp.FuncIndex(fn)]
	return f, cfg.Build(f)
}

func TestEdgesMatchInstructionSemantics(t *testing.T) {
	f, g := build(t, `
program e;
global int x;
func main() {
    if (x > 0) {
        x = 1;
    }
    x = 2;
}
`, "main")
	for i := range f.Instrs {
		in := &f.Instrs[i]
		succs := g.Succs[i]
		switch in.Op {
		case ir.OpBranch:
			if len(succs) != 2 && in.True != in.False {
				t.Fatalf("branch %d has %d successors", i, len(succs))
			}
		case ir.OpReturn:
			if len(succs) != 1 || succs[0] != g.Exit {
				t.Fatalf("return %d successors %v", i, succs)
			}
		case ir.OpJump:
			if len(succs) != 1 || succs[0] != in.True {
				t.Fatalf("jump %d successors %v", i, succs)
			}
		default:
			if len(succs) != 1 || succs[0] != i+1 {
				t.Fatalf("%v %d successors %v", in.Op, i, succs)
			}
		}
	}
}

func TestPredsMirrorSuccs(t *testing.T) {
	for _, w := range workloads.Bugs() {
		cp, err := w.Compile(true)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range cp.Funcs {
			g := cfg.Build(f)
			// Every successor edge appears as a predecessor edge.
			for u := range g.Succs {
				for _, v := range g.Succs[u] {
					found := false
					for _, p := range g.Preds[v] {
						if p == u {
							found = true
						}
					}
					if !found {
						t.Fatalf("%s/%s: edge %d->%d missing from preds", w.Name, f.Name, u, v)
					}
				}
			}
		}
	}
}

func TestReachability(t *testing.T) {
	f, g := build(t, `
program r;
global int x;
func main() {
    if (x > 0) {
        return;
    }
    x = 1;
}
`, "main")
	fromEntry := g.ReachableFromEntry()
	toExit := g.ReachesExit()
	if !fromEntry[0] {
		t.Fatal("entry unreachable from itself")
	}
	if !toExit[g.Exit] {
		t.Fatal("exit cannot reach itself")
	}
	for i := range f.Instrs {
		if fromEntry[i] && !toExit[i] {
			t.Fatalf("node %d reachable but cannot exit (no infinite loops here)", i)
		}
	}
	if g.NumNodes() != len(f.Instrs)+1 {
		t.Fatal("NumNodes wrong")
	}
}

func TestInfiniteLoopBodyCannotReachExit(t *testing.T) {
	// A `while (true)` loop still has a structural (never-taken) exit
	// edge — the CFG is syntactic — so a goto self-loop is the truly
	// structurally infinite shape.
	f, g := build(t, `
program inf;
global int x;
func main() {
spin:
    x = x + 1;
    goto spin;
}
`, "main")
	toExit := g.ReachesExit()
	// The loop body assignment must not reach the exit.
	reachable := 0
	for i := range f.Instrs {
		if toExit[i] {
			reachable++
		}
	}
	if reachable == len(f.Instrs) {
		t.Fatal("infinite loop body claims to reach exit")
	}
}
