// Dumpdiff: core dumps as first-class artifacts. The example provokes
// the mysql-5 commit/rollback bug, serializes the failure dump to
// disk, reloads it, and walks the reference-path comparison against
// the aligned-point dump — the §4 machinery on its own, without the
// schedule search.
//
//	go run ./examples/dumpdiff
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"heisendump"
	"heisendump/internal/coredump"
)

func main() {
	w := heisendump.WorkloadByName("mysql-5")
	prog, err := w.Compile(true)
	if err != nil {
		log.Fatal(err)
	}
	p := heisendump.NewPipeline(prog, w.Input, heisendump.Config{})

	fail, err := p.ProvokeFailure()
	if err != nil {
		log.Fatal(err)
	}

	// Serialize the failure dump, as a crash handler would.
	dir, err := os.MkdirTemp("", "heisendump")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "failure.core")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := fail.Dump.Encode(f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fi, _ := os.Stat(path)
	fmt.Printf("failure dump written to %s (%d bytes)\n", path, fi.Size())

	// Reload and analyze it.
	f, err = os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	reloaded, err := coredump.Decode(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reloaded: thread %d crashed at %s (%s)\n",
		reloaded.FailingThread, prog.FormatPC(reloaded.PC), reloaded.Reason)

	fail.Dump = reloaded
	an, err := p.Analyze(fail)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\naligned-point dump: %d bytes (%v alignment)\n",
		an.AlignedDumpBytes, an.AlignKind)
	fmt.Printf("%d locations compared (%d shared), %d differ:\n",
		an.Diff.VarsCompared, an.Diff.SharedCompared, len(an.Diff.Diffs))
	for _, d := range an.Diff.Diffs {
		tag := "local"
		if d.Shared {
			tag = "CSV  "
		}
		fmt.Printf("  [%s] %-24s failing=%-8v passing=%v\n", tag, d.Path, d.A, d.B)
	}

	fmt.Println("\nreference paths reachable in the failure dump:")
	for i, loc := range reloaded.Traverse() {
		if i >= 12 {
			fmt.Println("  ...")
			break
		}
		fmt.Printf("  %-28s = %v\n", loc.Path, loc.Value)
	}
}
