// Racehunt: bring your own program. This example writes a fresh
// concurrent program in the mini language (a ticket-dispenser race),
// shows it passing deterministically, provokes the race, and
// reproduces it — demonstrating the library on code that ships with
// no pre-built workload.
//
//	go run ./examples/racehunt
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"heisendump"
)

// src is a ticket dispenser whose fast path skips the lock: two
// clerks bump next_ticket non-atomically around a lock-protected
// audit step, so tickets can collide — caught by the assert.
const src = `
program tickets;

global int next_ticket;
global int issued[16];
global int audits;
lock AUD;

func main() {
    spawn clerk(3, 1);
    spawn clerk(3, 2);
}

func clerk(int n, int id) {
    var int i;
    var int t;
    for i = 1 .. n {
        next_ticket = next_ticket + 1;   // grab a ticket number...
        acquire(AUD);
        audits = audits + 1;             // ...record the audit entry...
        release(AUD);
        t = next_ticket;                 // ...and read the number back
        assert(issued[t] == 0, "duplicate ticket");
        issued[t] = id;
    }
}
`

func main() {
	prog, err := heisendump.CompileSource(src, true)
	if err != nil {
		log.Fatal(err)
	}

	s := heisendump.NewCompiled(prog, &heisendump.Input{},
		heisendump.WithHeuristic(heisendump.Dependence),
		heisendump.WithTrialBudget(1000),
	)

	// A deadline bounds the whole hunt; the sentinel errors say which
	// phase gave up. (The ticket race reproduces in well under 10s.)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	rep, err := s.Reproduce(ctx)
	switch {
	case errors.Is(err, heisendump.ErrCancelled):
		log.Fatalf("deadline hit; partial=%v: %v", rep.Partial, err)
	case errors.Is(err, heisendump.ErrScheduleNotFound):
		log.Fatalf("not reproduced in %d tries", rep.Search.Tries)
	case err != nil:
		log.Fatal(err)
	}
	fmt.Printf("crash signature: %s\n", rep.Failure.Signature.Reason)
	fmt.Printf("failure index: %s\n", rep.Analysis.FailureIndex.Format(prog))
	fmt.Printf("alignment: %v; CSVs: ", rep.Analysis.AlignKind)
	for i, c := range rep.Analysis.CSVs {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Print(c.Path)
	}
	fmt.Println()
	fmt.Printf("reproduced in %d tries:\n", rep.Search.Tries)
	for _, ap := range rep.Search.Schedule {
		fmt.Printf("  preempt thread %d at %v (sync #%d) -> thread %d\n",
			ap.Candidate.Thread, ap.Candidate.Kind, ap.Candidate.Seq, ap.SwitchTo)
	}
}
