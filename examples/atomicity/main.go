// Atomicity: walk the paper's §6 case study — apache bug 21285, the
// mod_mem_cache two-step insertion — comparing the three search
// configurations (plain CHESS, chessX+dep, chessX+temporal).
//
//	go run ./examples/atomicity
package main

import (
	"fmt"
	"log"

	"heisendump"
)

func main() {
	w := heisendump.WorkloadByName("apache-1")
	prog, err := w.Compile(true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bug %s (%s): %s\n\n", w.Name, w.BugID, w.Description)

	type cfg struct {
		name string
		c    heisendump.Config
	}
	configs := []cfg{
		{"chess (undirected)", heisendump.Config{PlainChess: true, MaxTries: 2000}},
		{"chessX+dep", heisendump.Config{Heuristic: heisendump.Dependence, MaxTries: 2000}},
		{"chessX+temporal", heisendump.Config{Heuristic: heisendump.Temporal, MaxTries: 2000}},
	}

	for _, c := range configs {
		p := heisendump.NewPipeline(prog, w.Input, c.c)
		rep, err := p.Run()
		if err != nil {
			log.Fatal(err)
		}
		status := "reproduced"
		if !rep.Search.Found {
			status = "CUT OFF"
		}
		fmt.Printf("%-20s %5d tries  %10v  %s\n",
			c.name, rep.Search.Tries, rep.Search.Elapsed, status)
		if c.name == "chessX+temporal" && rep.Search.Found {
			fmt.Println("\nfailure-inducing schedule:")
			for _, ap := range rep.Search.Schedule {
				fmt.Printf("  preempt thread %d at %v (sync #%d, lock %q) -> thread %d\n",
					ap.Candidate.Thread, ap.Candidate.Kind, ap.Candidate.Seq,
					ap.Candidate.Lock, ap.SwitchTo)
			}
			fmt.Printf("\ncritical shared variables (%d of %d shared):\n",
				len(rep.Analysis.CSVs), rep.Analysis.Diff.SharedCompared)
			for _, csv := range rep.Analysis.CSVs {
				fmt.Printf("  %-20s failing=%v passing=%v\n", csv.Path, csv.A, csv.B)
			}
		}
	}
}
