// Quickstart: reproduce the paper's Fig. 1 Heisenbug end to end.
//
// The program provokes the failure under random multicore-style
// interleavings, captures a core dump, reverse engineers the failure
// index, aligns a deterministic re-execution, diffs the dumps to find
// the critical shared variables, and searches for a failure-inducing
// schedule — through the Session API's staged calls, so each phase's
// results print as soon as it completes and a Ctrl-C at any point
// leaves everything printed so far as the partial result.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"

	"heisendump"
)

func main() {
	w := heisendump.WorkloadByName("fig1")
	prog, err := w.Compile(true) // loop-counter instrumentation on
	if err != nil {
		log.Fatal(err)
	}

	// Ctrl-C cancels the context; every Session phase stops
	// cooperatively (the schedule search within one trial).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	s := heisendump.NewCompiled(prog, w.Input,
		heisendump.WithHeuristic(heisendump.Temporal),
		heisendump.WithTrialBudget(1000),
		// WithWorkers sets the schedule-search pool width (0 =
		// GOMAXPROCS). The result is bit-identical for any value:
		// workers claim combinations in deterministic rank order and
		// outcomes fold back in that order.
		heisendump.WithWorkers(0),
		// WithPrune skips trials proven happens-before equivalent to
		// already-executed runs. Found/Schedule/Tries are unchanged;
		// only the number of runs actually executed (and wall time)
		// drops — see res.TrialsPruned below.
		heisendump.WithPrune(true),
	)

	fmt.Println("== production phase: provoke the Heisenbug ==")
	fail, err := s.ProvokeFailure(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crash: %s\n", fail.Signature.Reason)
	fmt.Printf("calling context: %s\n", fail.Dump.CallingContext())
	fmt.Printf("core dump: %d bytes (seed %d, %d stress attempts)\n\n",
		fail.DumpBytes, fail.Seed, fail.Attempts)

	fmt.Println("== debugging phase: analyze the dump ==")
	an, err := s.Analyze(ctx, fail)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("failure index (len %d): %s\n", an.IndexLen, an.FailureIndex.Format(prog))
	fmt.Printf("aligned point: %v after %d steps at %s\n",
		an.AlignKind, an.AlignSteps, prog.FormatPC(an.AlignPC))
	fmt.Printf("dump diff: %d vars compared, %d differ; CSVs:\n",
		an.Diff.VarsCompared, len(an.Diff.Diffs))
	for _, c := range an.CSVs {
		fmt.Printf("  %-12s failing=%v passing=%v\n", c.Path, c.A, c.B)
	}

	fmt.Println("\n== reproduction phase: search for the schedule ==")
	res, err := s.Search(ctx, fail, an)
	if err != nil {
		log.Fatalf("not reproduced in %d tries: %v", res.Tries, err)
	}
	fmt.Printf("reproduced after %d tries (%d executed, %d pruned as equivalent) in %v\n",
		res.Tries, res.TrialsExecuted, res.TrialsPruned, res.Elapsed)
	for _, ap := range res.Schedule {
		fmt.Printf("  preempt thread %d at %v (sync #%d) -> run thread %d\n",
			ap.Candidate.Thread, ap.Candidate.Kind, ap.Candidate.Seq, ap.SwitchTo)
	}
}
