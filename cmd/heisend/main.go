// Command heisend serves reproduction-as-a-service: an HTTP/JSON
// batch server over the heisendump Session API.
//
// Clients POST dump+program reproduction jobs (idempotent job keys);
// a bounded multi-tenant scheduler runs each as its own Session on a
// shared worker budget with weighted fairness and typed admission
// control (429 queue_full, 504 deadline_exceeded). Progress streams
// over SSE; completed reports persist with a TTL. See docs/SERVICE.md
// for the endpoint reference.
//
// Usage:
//
//	heisend [-addr :8347] [-workers 4] [-queue-depth 64]
//	        [-result-ttl 15m] [-tenant-weight name=w]... [-pprof]
//
// GET /metrics serves the process-wide telemetry registry as
// Prometheus text (see docs/OBSERVABILITY.md for the catalog); -pprof
// additionally mounts net/http/pprof under /debug/pprof/.
//
// Quick start:
//
//	heisend -addr localhost:8347 &
//	curl -s localhost:8347/v1/jobs?wait=1 -d '{
//	  "tenant": "demo",
//	  "source": "...subject program...",
//	  "options": {"trial_budget": 1000}
//	}'
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"heisendump/internal/server"
)

// tenantWeights collects repeated -tenant-weight name=w flags.
type tenantWeights map[string]int

func (t tenantWeights) String() string {
	parts := make([]string, 0, len(t))
	for name, w := range t {
		parts = append(parts, fmt.Sprintf("%s=%d", name, w))
	}
	return strings.Join(parts, ",")
}

func (t tenantWeights) Set(v string) error {
	name, ws, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want name=weight, got %q", v)
	}
	w, err := strconv.Atoi(ws)
	if err != nil || w <= 0 {
		return fmt.Errorf("weight must be a positive integer, got %q", ws)
	}
	t[name] = w
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("heisend: ")

	weights := tenantWeights{}
	addr := flag.String("addr", ":8347", "listen address")
	workers := flag.Int("workers", 4, "concurrent jobs (each runs one Session)")
	queueDepth := flag.Int("queue-depth", 64, "per-tenant backlog cap before 429 queue_full")
	resultTTL := flag.Duration("result-ttl", 15*time.Minute, "how long completed reports stay fetchable")
	eventBuffer := flag.Int("event-buffer", 1024, "per-job SSE ring capacity")
	trialBudget := flag.Int("trial-budget", 3000, "default schedule-search budget for jobs that leave it unset")
	stressBudget := flag.Int("stress-budget", 6000, "default failure-provocation budget for jobs that leave it unset")
	flag.Var(weights, "tenant-weight", "tenant DRR weight as name=w (repeatable; default 1)")
	enablePprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (exposes stacks and heap contents; opt-in)")
	flag.Parse()

	srv := server.New(server.Config{
		Workers:             *workers,
		QueueDepth:          *queueDepth,
		TenantWeights:       weights,
		ResultTTL:           *resultTTL,
		EventBuffer:         *eventBuffer,
		DefaultTrialBudget:  *trialBudget,
		DefaultStressBudget: *stressBudget,
		EnablePprof:         *enablePprof,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		log.Print("draining: admission closed, cancelling running jobs")
		srv.Shutdown()
		_ = httpSrv.Close()
	}()

	log.Printf("serving on %s (%d workers, queue depth %d, result TTL %s)",
		ln.Addr(), *workers, *queueDepth, *resultTTL)
	if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
}
