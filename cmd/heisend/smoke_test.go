package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"heisendump"
	"heisendump/internal/gen"
	"heisendump/internal/server"
)

// TestSmokeDifferential is the e2e smoke gate: boot the batch service
// on loopback, submit a generated-workload corpus over HTTP at
// workers {1,4} × prune {off,on}, and diff every fetched report
// against a direct in-process Session run.
//
// At workers=1 the entire report is deterministic, so the comparison
// is bit-for-bit on the JSON. At workers=4 the cost counters may vary
// with worker scheduling, so the comparison pins the deterministic
// fingerprint (Outcome, Found, Tries, Schedule) — the same invariant
// the library's own determinism tests enforce.
func TestSmokeDifferential(t *testing.T) {
	seeds := 25
	if testing.Short() {
		seeds = 8
	}

	// The corpus: gen programs with the oracle's -short budgets, as
	// cmd/fuzz -out would emit them.
	var entries []gen.Entry
	var corpus bytes.Buffer
	for seed := int64(1); seed <= int64(seeds); seed++ {
		p := gen.Generate(seed)
		e := gen.Entry{Seed: p.Seed, Name: p.Name, Source: p.Source,
			TrialBudget: 1500, StressBudget: 3000}
		entries = append(entries, e)
		b, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		corpus.Write(b)
		corpus.WriteByte('\n')
	}

	srv := server.New(server.Config{Workers: 4, QueueDepth: 2 * seeds})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Shutdown()
	}()

	// Direct in-process runs through the identical projection. The
	// fingerprint is configuration-independent; the full report is
	// compared only at workers=1 where it is deterministic.
	directFull := make(map[string][]byte) // "name/prune" -> report JSON at workers=1
	type fp struct {
		Outcome  string
		Found    bool
		Tries    int
		Schedule string
	}
	directFP := make(map[string]fp)
	for _, e := range entries {
		prog, err := heisendump.Compile(e.Source)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		for _, prune := range []bool{false, true} {
			s := heisendump.NewCompiled(prog, &heisendump.Input{},
				heisendump.WithWorkers(1),
				heisendump.WithPrune(prune),
				heisendump.WithTrialBudget(e.TrialBudget),
				heisendump.WithStressBudget(e.StressBudget),
			)
			rep, runErr := s.Reproduce(context.Background())
			jr, ep := server.BuildReport(rep, runErr, false)
			if ep != nil {
				t.Fatalf("%s direct run: %v", e.Name, ep)
			}
			b, err := json.Marshal(jr)
			if err != nil {
				t.Fatal(err)
			}
			directFull[fmt.Sprintf("%s/%v", e.Name, prune)] = b
			directFP[e.Name] = fp{jr.Outcome, jr.Found, jr.Tries, jr.Schedule}
		}
	}

	for _, workers := range []int{1, 4} {
		for _, prune := range []bool{false, true} {
			tenant := fmt.Sprintf("w%d-p%v", workers, prune)
			url := fmt.Sprintf("%s/v1/batch?tenant=%s&workers=%d", ts.URL, tenant, workers)
			if prune {
				url += "&prune=1"
			}
			resp, err := http.Post(url, "application/x-ndjson", bytes.NewReader(corpus.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			var br server.BatchResponse
			if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if br.Accepted != len(entries) || br.Rejected != 0 {
				t.Fatalf("[%s] batch: %+v", tenant, br)
			}

			for i, r := range br.Results {
				e := entries[i]
				resp, err := http.Get(ts.URL + "/v1/jobs/" + r.ID + "?wait=1")
				if err != nil {
					t.Fatal(err)
				}
				var st server.JobStatus
				if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
					t.Fatal(err)
				}
				resp.Body.Close()
				if st.State != server.StateDone || st.Report == nil {
					t.Fatalf("[%s] %s: state %s err=%+v", tenant, e.Name, st.State, st.Error)
				}

				if workers == 1 {
					got, _ := json.Marshal(st.Report)
					want := directFull[fmt.Sprintf("%s/%v", e.Name, prune)]
					if !bytes.Equal(got, want) {
						t.Errorf("[%s] %s: HTTP report differs from direct Session run\n  http: %s\ndirect: %s",
							tenant, e.Name, got, want)
					}
					continue
				}
				want := directFP[e.Name]
				got := fp{st.Report.Outcome, st.Report.Found, st.Report.Tries, st.Report.Schedule}
				if got != want {
					t.Errorf("[%s] %s: fingerprint drift\n  http: %+v\ndirect: %+v", tenant, e.Name, got, want)
				}
			}
		}
	}
}
