package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"heisendump"
	"heisendump/internal/gen"
	"heisendump/internal/server"
)

// TestSmokeDifferential is the e2e smoke gate: boot the batch service
// on loopback, submit a generated-workload corpus over HTTP at
// workers {1,4} × prune {off,on}, and diff every fetched report
// against a direct in-process Session run.
//
// At workers=1 the entire report is deterministic, so the comparison
// is bit-for-bit on the JSON. At workers=4 the cost counters may vary
// with worker scheduling, so the comparison pins the deterministic
// fingerprint (Outcome, Found, Tries, Schedule) — the same invariant
// the library's own determinism tests enforce.
func TestSmokeDifferential(t *testing.T) {
	seeds := 25
	if testing.Short() {
		seeds = 8
	}

	// The corpus: gen programs with the oracle's -short budgets, as
	// cmd/fuzz -out would emit them.
	var entries []gen.Entry
	var corpus bytes.Buffer
	for seed := int64(1); seed <= int64(seeds); seed++ {
		p := gen.Generate(seed)
		e := gen.Entry{Seed: p.Seed, Name: p.Name, Source: p.Source,
			TrialBudget: 1500, StressBudget: 3000}
		entries = append(entries, e)
		b, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		corpus.Write(b)
		corpus.WriteByte('\n')
	}

	srv := server.New(server.Config{Workers: 4, QueueDepth: 2 * seeds})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Shutdown()
	}()

	// Direct in-process runs through the identical projection. The
	// fingerprint is configuration-independent; the full report is
	// compared only at workers=1 where it is deterministic.
	directFull := make(map[string][]byte) // "name/prune" -> report JSON at workers=1
	type fp struct {
		Outcome  string
		Found    bool
		Tries    int
		Schedule string
	}
	directFP := make(map[string]fp)
	for _, e := range entries {
		prog, err := heisendump.Compile(e.Source)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		for _, prune := range []bool{false, true} {
			s := heisendump.NewCompiled(prog, &heisendump.Input{},
				heisendump.WithWorkers(1),
				heisendump.WithPrune(prune),
				heisendump.WithTrialBudget(e.TrialBudget),
				heisendump.WithStressBudget(e.StressBudget),
			)
			rep, runErr := s.Reproduce(context.Background())
			jr, ep := server.BuildReport(rep, runErr, false)
			if ep != nil {
				t.Fatalf("%s direct run: %v", e.Name, ep)
			}
			b, err := json.Marshal(jr)
			if err != nil {
				t.Fatal(err)
			}
			directFull[fmt.Sprintf("%s/%v", e.Name, prune)] = b
			directFP[e.Name] = fp{jr.Outcome, jr.Found, jr.Tries, jr.Schedule}
		}
	}

	for _, workers := range []int{1, 4} {
		for _, prune := range []bool{false, true} {
			tenant := fmt.Sprintf("w%d-p%v", workers, prune)
			url := fmt.Sprintf("%s/v1/batch?tenant=%s&workers=%d", ts.URL, tenant, workers)
			if prune {
				url += "&prune=1"
			}
			resp, err := http.Post(url, "application/x-ndjson", bytes.NewReader(corpus.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			var br server.BatchResponse
			if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if br.Accepted != len(entries) || br.Rejected != 0 {
				t.Fatalf("[%s] batch: %+v", tenant, br)
			}

			for i, r := range br.Results {
				e := entries[i]
				resp, err := http.Get(ts.URL + "/v1/jobs/" + r.ID + "?wait=1")
				if err != nil {
					t.Fatal(err)
				}
				var st server.JobStatus
				if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
					t.Fatal(err)
				}
				resp.Body.Close()
				if st.State != server.StateDone || st.Report == nil {
					t.Fatalf("[%s] %s: state %s err=%+v", tenant, e.Name, st.State, st.Error)
				}

				if workers == 1 {
					got, _ := json.Marshal(st.Report)
					want := directFull[fmt.Sprintf("%s/%v", e.Name, prune)]
					if !bytes.Equal(got, want) {
						t.Errorf("[%s] %s: HTTP report differs from direct Session run\n  http: %s\ndirect: %s",
							tenant, e.Name, got, want)
					}
					continue
				}
				want := directFP[e.Name]
				got := fp{st.Report.Outcome, st.Report.Found, st.Report.Tries, st.Report.Schedule}
				if got != want {
					t.Errorf("[%s] %s: fingerprint drift\n  http: %+v\ndirect: %+v", tenant, e.Name, got, want)
				}
			}
		}
	}

	// Telemetry cross-check: with every job terminal the process is
	// quiescent, so the Prometheus scrape and /v1/stats' telemetry
	// snapshot read the same registry at rest and must agree exactly on
	// the core counters — all of which the batches above advanced.
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Telemetry map[string]int64 `json:"telemetry"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	metrics := scrapeMetrics(t, ts.URL)
	for _, series := range []string{
		"heisen_server_jobs_submitted_total",
		`heisen_server_jobs_completed_total{outcome="reproduced"}`,
		"heisen_chess_searches_total",
		"heisen_chess_trials_executed_total",
		"heisen_chess_steps_executed_total",
		`heisen_interp_steps_total{engine="bytecode"}`,
		"heisen_progcache_hits_total",
		"heisen_progcache_misses_total",
	} {
		if metrics[series] <= 0 {
			t.Errorf("/metrics: core counter %s is %d, want > 0", series, metrics[series])
		}
		if metrics[series] != stats.Telemetry[series] {
			t.Errorf("/metrics and /v1/stats disagree on %s: %d vs %d",
				series, metrics[series], stats.Telemetry[series])
		}
	}
	// Every admitted job reached a terminal outcome.
	completed := metrics[`heisen_server_jobs_completed_total{outcome="reproduced"}`] +
		metrics[`heisen_server_jobs_completed_total{outcome="not_reproduced"}`] +
		metrics[`heisen_server_jobs_completed_total{outcome="error"}`]
	if submitted := metrics["heisen_server_jobs_submitted_total"]; completed != submitted {
		t.Errorf("jobs accounting: %d completed, %d submitted", completed, submitted)
	}
	// The per-instance gauge families (scraped from the server object,
	// not the registry) are present too.
	for _, series := range []string{"heisen_server_queued", "heisen_server_store_jobs"} {
		if _, ok := metrics[series]; !ok {
			t.Errorf("/metrics: per-instance gauge %s missing", series)
		}
	}
}

// scrapeMetrics GETs /metrics, validates the exposition-format
// essentials (content type, line shape, HELP/TYPE headers preceding
// samples), and returns every sample as series -> value.
func scrapeMetrics(t *testing.T, base string) map[string]int64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics: content type %q, want text exposition 0.0.4", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]int64{}
	typed := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSuffix(string(body), "\n"), "\n") {
		if f := strings.Fields(line); len(f) >= 3 && f[0] == "#" && f[1] == "TYPE" {
			typed[f[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		if len(f) != 2 {
			t.Fatalf("/metrics: malformed sample line %q", line)
		}
		name := f[0]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if !typed[name] && !typed[base] {
			t.Errorf("/metrics: sample %q has no preceding # TYPE header", f[0])
		}
		v, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			t.Fatalf("/metrics: non-integer sample %q: %v", line, err)
		}
		out[f[0]] = v
	}
	if len(out) == 0 {
		t.Fatal("/metrics: empty scrape")
	}
	return out
}
