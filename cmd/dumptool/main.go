// Command dumptool inspects and compares serialized core dumps.
//
// Usage:
//
//	dumptool -capture -w apache-1 -o fail.core   # provoke + save a dump
//	dumptool -capture -w mysql-2 -timeout 10s    # deadline the stress phase
//	dumptool -info fail.core                     # header, threads, frames
//	dumptool -paths fail.core                    # reference-path traversal
//	dumptool -diff fail.core pass.core           # value differences / CSVs
//	dumptool -analyze -w apache-1                # static race/deadlock report
//	dumptool -analyze prog.src -json             # analyze a source file as JSON
//
// -capture honors Ctrl-C and -timeout: the stress phase stops
// cooperatively and dumptool exits without writing a file.
//
// -analyze runs the static lockset analyzer (see docs/ANALYSIS.md)
// over a workload (-w) or a source file given as the argument, with no
// execution at all, and prints the race/deadlock candidate report
// (-json for the machine-readable form the server's /v1/analyze
// returns). It exits 1 when the report contains any candidate, so
// scripts can gate on a clean program.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"heisendump"
	"heisendump/internal/coredump"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dumptool: ")

	capture := flag.Bool("capture", false, "provoke a failure of -w and save its dump to -o")
	wname := flag.String("w", "", "workload for -capture")
	out := flag.String("o", "failure.core", "output path for -capture")
	timeout := flag.Duration("timeout", 0, "wall-clock deadline for -capture (0 = none)")
	info := flag.String("info", "", "print a dump's header and stacks")
	paths := flag.String("paths", "", "print a dump's reference-path traversal")
	diff := flag.Bool("diff", false, "compare two dumps given as arguments")
	analyze := flag.Bool("analyze", false, "static race/deadlock analysis of -w or a source-file argument")
	asJSON := flag.Bool("json", false, "emit the -analyze report as JSON")
	flag.Parse()

	switch {
	case *analyze:
		var prog *heisendump.Program
		var err error
		switch {
		case *wname != "":
			w := heisendump.WorkloadByName(*wname)
			if w == nil {
				log.Fatalf("unknown workload %q", *wname)
			}
			prog, err = w.Compile(false)
		case flag.NArg() == 1:
			src, rerr := os.ReadFile(flag.Arg(0))
			if rerr != nil {
				log.Fatal(rerr)
			}
			prog, err = heisendump.Compile(string(src))
		default:
			log.Fatal("-analyze needs -w or exactly one source-file argument")
		}
		if err != nil {
			log.Fatal(err)
		}
		rep := heisendump.Analyze(prog)
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rep); err != nil {
				log.Fatal(err)
			}
		} else {
			fmt.Print(rep.String())
		}
		if len(rep.Races) > 0 || len(rep.Deadlocks) > 0 {
			os.Exit(1)
		}

	case *capture:
		w := heisendump.WorkloadByName(*wname)
		if w == nil {
			log.Fatalf("unknown workload %q", *wname)
		}
		prog, err := w.Compile(true)
		if err != nil {
			log.Fatal(err)
		}
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		if *timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *timeout)
			defer cancel()
		}
		fail, err := heisendump.NewCompiled(prog, w.Input).ProvokeFailure(ctx)
		if err != nil {
			if errors.Is(err, heisendump.ErrCancelled) {
				log.Fatalf("capture cancelled before a failure was provoked: %v", err)
			}
			log.Fatal(err)
		}
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := fail.Dump.Encode(f); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d bytes): %s\n", *out, fail.DumpBytes, fail.Signature.Reason)

	case *info != "":
		d := load(*info)
		fmt.Printf("program:        %s\n", d.Program)
		fmt.Printf("reason:         %s\n", d.Reason)
		fmt.Printf("failing thread: %d at %v\n", d.FailingThread, d.PC)
		fmt.Printf("total steps:    %d\n", d.TotalSteps)
		fmt.Printf("threads:        %d\n", len(d.Threads))
		for _, t := range d.Threads {
			fmt.Printf("  thread %d: status=%d steps=%d\n", t.ID, t.Status, t.Steps)
			for i := len(t.Frames) - 1; i >= 0; i-- {
				fr := t.Frames[i]
				fmt.Printf("    #%d %s pc=%d locals=%d\n", len(t.Frames)-1-i, fr.FuncName, fr.PC, len(fr.Locals))
			}
		}
		fmt.Printf("globals: %d, arrays: %d, heap objects: %d\n",
			len(d.Globals), len(d.Arrays), len(d.Heap))

	case *paths != "":
		d := load(*paths)
		for _, loc := range d.Traverse() {
			tag := "local "
			if loc.Shared {
				tag = "shared"
			}
			fmt.Printf("[%s] %-32s = %v\n", tag, loc.Path, loc.Value)
		}

	case *diff:
		if flag.NArg() != 2 {
			log.Fatal("-diff needs two dump paths")
		}
		a, b := load(flag.Arg(0)), load(flag.Arg(1))
		res := coredump.Compare(a, b)
		fmt.Printf("%d locations compared (%d shared), %d differ, %d CSVs\n",
			res.VarsCompared, res.SharedCompared, len(res.Diffs), len(res.CSVs()))
		for _, dv := range res.Diffs {
			tag := "local"
			if dv.Shared {
				tag = "CSV  "
			}
			fmt.Printf("[%s] %-32s %v -> %v\n", tag, dv.Path, dv.A, dv.B)
		}

	default:
		flag.Usage()
		os.Exit(2)
	}
}

func load(path string) *coredump.Dump {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	d, err := coredump.Decode(f)
	if err != nil {
		log.Fatal(err)
	}
	return d
}
