package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
)

// Finding is one rule violation.
type Finding struct {
	Rule    string
	Message string
	Pos     token.Position
}

// bannedRandFuncs are the math/rand package-level functions that draw
// from the process-global source. Constructors of explicitly seeded
// generators (New, NewSource, NewZipf) are deliberately absent — they
// are the sanctioned idiom.
var bannedRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true,
	"Seed": true, "Read": true,
}

// wallclockFuncs are the time-package reads of the wall clock.
// Constructors of explicit values (time.Duration arithmetic,
// time.Unix, tickers under a caller-supplied clock) pass.
var wallclockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// outputFuncs name the call targets that render text: flagged when
// they appear inside a range over a map (maporder rule).
var outputFuncs = map[string]bool{
	"Fprintf": true, "Fprint": true, "Fprintln": true,
	"Sprintf": true, "Sprint": true, "Sprintln": true,
	"Printf": true, "Print": true, "Println": true,
	"WriteString": true, "WriteByte": true, "WriteRune": true, "Write": true,
}

// CheckDir parses and checks every non-test .go file of one package
// directory. clockRule names the rule the wall-clock check reports
// under — "wallclock" for the deterministic packages, "telemetryclock"
// for the observability tier — so each finding (and each
// //lintgate:allow suppression) states which invariant is at stake.
func CheckDir(dir, clockRule string) ([]Finding, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files")
	}
	return Check(fset, dir, files, clockRule), nil
}

// Check runs every rule over one parsed package. Type information is
// best-effort: the package is checked with a stub importer that
// resolves every import to an empty package, so selector resolution
// inside imported types fails silently, but package identities
// (which ident is the "time" package?) and locally-declared types
// (is this range expression a map?) — all the rules need — survive.
func Check(fset *token.FileSet, path string, files []*ast.File, clockRule string) []Finding {
	info := &types.Info{
		Uses:  map[*ast.Ident]types.Object{},
		Defs:  map[*ast.Ident]types.Object{},
		Types: map[ast.Expr]types.TypeAndValue{},
	}
	conf := types.Config{
		Importer: stubImporter{cache: map[string]*types.Package{}},
		Error:    func(error) {}, // stub imports guarantee errors; rules tolerate holes
	}
	_, _ = conf.Check(path, fset, files, info)

	var out []Finding
	for _, f := range files {
		allow := allowLines(fset, f)
		report := func(pos token.Pos, rule, msg string) {
			p := fset.Position(pos)
			if just, ok := allow.covering(p.Line, rule); ok && just {
				return
			} else if ok && !just {
				out = append(out, Finding{Rule: rule, Pos: p,
					Message: "suppression without a justification — say why the invariant does not apply"})
				return
			}
			out = append(out, Finding{Rule: rule, Message: msg, Pos: p})
		}
		var mapRangeDepth int
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if pkg, ok := pkgOf(info, n.X); ok {
					switch {
					case pkg == "time" && wallclockFuncs[n.Sel.Name]:
						report(n.Pos(), clockRule, clockMessage(clockRule, n.Sel.Name))
					case pkg == "math/rand" && bannedRandFuncs[n.Sel.Name]:
						report(n.Pos(), "globalrand",
							fmt.Sprintf("rand.%s draws from the process-global source — use rand.New(rand.NewSource(seed))", n.Sel.Name))
					}
				}
			case *ast.CallExpr:
				if mapRangeDepth > 0 {
					if sel, ok := n.Fun.(*ast.SelectorExpr); ok && outputFuncs[sel.Sel.Name] {
						report(n.Pos(), "maporder",
							fmt.Sprintf("%s inside a range over a map — iteration order is random; collect keys, sort, then render", sel.Sel.Name))
					}
				}
			case *ast.RangeStmt:
				if isMap(info, n.X) {
					ast.Inspect(n.X, walk) // the range expression itself is outside the loop body
					mapRangeDepth++
					ast.Inspect(n.Body, walk)
					mapRangeDepth--
					return false
				}
			}
			return true
		}
		ast.Inspect(f, walk)
	}
	return out
}

// clockMessage phrases the wall-clock finding for the invariant the
// package tier is held to: determinism (results must not depend on the
// clock) or clock injection (telemetry and the server must be
// steerable by test clocks).
func clockMessage(rule, fn string) string {
	if rule == "telemetryclock" {
		return fmt.Sprintf("time.%s in an observability package — take the clock by injection (a clock field or parameter) so tests and replay can steer it", fn)
	}
	return fmt.Sprintf("time.%s in a deterministic package — results must not depend on the wall clock", fn)
}

func pkgOf(info *types.Info, x ast.Expr) (string, bool) {
	id, ok := x.(*ast.Ident)
	if !ok {
		return "", false
	}
	if pn, ok := info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path(), true
	}
	return "", false
}

func isMap(info *types.Info, x ast.Expr) bool {
	tv, ok := info.Types[x]
	if !ok || tv.Type == nil {
		return false
	}
	_, isM := tv.Type.Underlying().(*types.Map)
	return isM
}

// allowSet maps source lines to their lintgate:allow directives.
type allowSet map[int][]allowDirective

type allowDirective struct {
	rule      string
	justified bool
}

// covering reports whether line (or the standalone comment line above
// it) carries an allow directive for rule, and whether that directive
// has a justification.
func (a allowSet) covering(line int, rule string) (justified, ok bool) {
	for _, l := range []int{line, line - 1} {
		for _, d := range a[l] {
			if d.rule == rule {
				return d.justified, true
			}
		}
	}
	return false, false
}

// allowLines extracts //lintgate:allow directives: the rule name, and
// whether a justification (any further text) follows it.
func allowLines(fset *token.FileSet, f *ast.File) allowSet {
	out := allowSet{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := c.Text
			idx := strings.Index(text, "lintgate:allow")
			if idx < 0 {
				continue
			}
			rest := strings.TrimSpace(text[idx+len("lintgate:allow"):])
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				continue
			}
			// The justification is whatever follows the rule name, minus
			// separator punctuation; a handful of real words, not a dash.
			just := strings.TrimLeft(strings.TrimPrefix(rest, fields[0]), " \t-—–:,")
			d := allowDirective{rule: fields[0], justified: len(just) >= 8}
			line := fset.Position(c.Pos()).Line
			out[line] = append(out[line], d)
		}
	}
	return out
}

// stubImporter resolves every import to an empty, complete package
// whose name is the path's last element — enough for go/types to bind
// package identifiers (the rules' only cross-package need) without a
// build system.
type stubImporter struct {
	cache map[string]*types.Package
}

func (s stubImporter) Import(path string) (*types.Package, error) {
	if p, ok := s.cache[path]; ok {
		return p, nil
	}
	name := path
	if i := strings.LastIndex(path, "/"); i >= 0 {
		name = path[i+1:]
	}
	p := types.NewPackage(path, name)
	p.MarkComplete()
	s.cache[path] = p
	return p, nil
}
