package main

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func check(t *testing.T, src string) []Finding {
	t.Helper()
	return checkAs(t, src, "wallclock")
}

func checkAs(t *testing.T, src, clockRule string) []Finding {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "subject.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return Check(fset, "subject", []*ast.File{f}, clockRule)
}

func rules(fs []Finding) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = f.Rule
	}
	return out
}

func TestWallclock(t *testing.T) {
	fs := check(t, `package p
import "time"
func f() time.Duration {
	start := time.Now()
	return time.Since(start)
}
`)
	if got := rules(fs); len(got) != 2 || got[0] != "wallclock" || got[1] != "wallclock" {
		t.Fatalf("findings %v, want two wallclock", fs)
	}
	// Explicit durations and arithmetic are not wall-clock reads.
	if fs := check(t, `package p
import "time"
var d = 5 * time.Second
`); len(fs) != 0 {
		t.Fatalf("duration arithmetic flagged: %v", fs)
	}
}

// TestTelemetryClock pins the observability tier's variant of the
// wall-clock rule: same detection, its own rule name — so suppressions
// must name the invariant actually at stake.
func TestTelemetryClock(t *testing.T) {
	fs := checkAs(t, `package p
import "time"
func f() time.Time { return time.Now() }
`, "telemetryclock")
	if got := rules(fs); len(got) != 1 || got[0] != "telemetryclock" {
		t.Fatalf("findings %v, want one telemetryclock", fs)
	}
	if !strings.Contains(fs[0].Message, "injection") {
		t.Fatalf("telemetryclock message should demand clock injection, got %q", fs[0].Message)
	}
	// A justified allow under the telemetryclock name suppresses...
	if fs := checkAs(t, `package p
import "time"
func f() time.Time {
	return time.Now() //lintgate:allow telemetryclock — installing the default for an injected clock
}
`, "telemetryclock"); len(fs) != 0 {
		t.Fatalf("justified telemetryclock suppression failed: %v", fs)
	}
	// ... but an allow written against the wallclock rule does not:
	// the suppression must name the invariant this tier is held to.
	fs = checkAs(t, `package p
import "time"
func f() time.Time {
	return time.Now() //lintgate:allow wallclock — names the wrong tier's rule
}
`, "telemetryclock")
	if len(fs) != 1 || fs[0].Rule != "telemetryclock" {
		t.Fatalf("wrong-rule suppression leaked: %v", fs)
	}
}

func TestGlobalRand(t *testing.T) {
	fs := check(t, `package p
import "math/rand"
func f() int { return rand.Intn(10) }
func g() { rand.Seed(42); rand.Shuffle(3, func(i, j int) {}) }
`)
	if got := rules(fs); len(got) != 3 {
		t.Fatalf("findings %v, want three globalrand", fs)
	}
	// The sanctioned idiom: an explicitly seeded local generator.
	if fs := check(t, `package p
import "math/rand"
func f(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}
`); len(fs) != 0 {
		t.Fatalf("seeded generator flagged: %v", fs)
	}
}

func TestMapOrder(t *testing.T) {
	fs := check(t, `package p
import "fmt"
func f(m map[string]int) string {
	s := ""
	for k, v := range m {
		s += fmt.Sprintf("%s=%d\n", k, v)
	}
	return s
}
`)
	if got := rules(fs); len(got) != 1 || got[0] != "maporder" {
		t.Fatalf("findings %v, want one maporder", fs)
	}
	// The fix idiom — collect, sort, render — does not trip the rule,
	// and neither does non-output work inside a map range.
	if fs := check(t, `package p
import (
	"fmt"
	"sort"
)
func f(m map[string]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := ""
	for _, k := range keys {
		s += fmt.Sprintf("%s=%d\n", k, m[k])
	}
	return s
}
`); len(fs) != 0 {
		t.Fatalf("sorted-render idiom flagged: %v", fs)
	}
}

func TestSliceRangeOutputAllowed(t *testing.T) {
	if fs := check(t, `package p
import "fmt"
func f(xs []int) string {
	s := ""
	for _, x := range xs {
		s += fmt.Sprint(x)
	}
	return s
}
`); len(fs) != 0 {
		t.Fatalf("slice-range output flagged: %v", fs)
	}
}

func TestSuppression(t *testing.T) {
	// A justified allow on the same line suppresses the finding.
	if fs := check(t, `package p
import "time"
func f() time.Time {
	return time.Now() //lintgate:allow wallclock — diagnostic only, outside the contract
}
`); len(fs) != 0 {
		t.Fatalf("justified same-line suppression failed: %v", fs)
	}
	// ... as does a standalone comment on the line above.
	if fs := check(t, `package p
import "time"
func f() time.Time {
	//lintgate:allow wallclock — diagnostic only, outside the contract
	return time.Now()
}
`); len(fs) != 0 {
		t.Fatalf("justified line-above suppression failed: %v", fs)
	}
	// A bare allow without a justification still fails.
	fs := check(t, `package p
import "time"
func f() time.Time {
	return time.Now() //lintgate:allow wallclock
}
`)
	if len(fs) != 1 || !strings.Contains(fs[0].Message, "justification") {
		t.Fatalf("unjustified suppression not rejected: %v", fs)
	}
	// An allow for a different rule does not suppress.
	fs = check(t, `package p
import "time"
func f() time.Time {
	return time.Now() //lintgate:allow maporder — wrong rule entirely
}
`)
	if len(fs) != 1 || fs[0].Rule != "wallclock" {
		t.Fatalf("wrong-rule suppression leaked: %v", fs)
	}
}

// TestDeterministicPackagesClean pins the actual repo invariant: the
// checked packages, as committed, produce zero findings — every
// suppression in them is justified. Both tiers are covered, each under
// its own clock rule (clockRuleFor resolves the ../../-prefixed paths
// the same way it resolves CI's bare ones).
func TestDeterministicPackagesClean(t *testing.T) {
	for _, dir := range append(append([]string{}, deterministicPkgs...), telemetryPkgs...) {
		fs, err := CheckDir("../../"+dir, clockRuleFor(dir))
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, f := range fs {
			t.Errorf("%s: %s:%d: [%s] %s", dir, f.Pos.Filename, f.Pos.Line, f.Rule, f.Message)
		}
	}
}

// TestClockRuleFor pins the tier lookup, including the suffix match
// that makes explicit command-line paths agree with CI's bare ones.
func TestClockRuleFor(t *testing.T) {
	for dir, want := range map[string]string{
		"internal/chess":        "wallclock",
		"internal/telemetry":    "telemetryclock",
		"internal/server":       "telemetryclock",
		"../../internal/server": "telemetryclock",
		"./internal/telemetry":  "telemetryclock",
		"internal/observer":     "wallclock",
		"internal/server_fake":  "wallclock",
		"cmd/heisend":           "wallclock",
	} {
		if got := clockRuleFor(dir); got != want {
			t.Errorf("clockRuleFor(%q) = %q, want %q", dir, got, want)
		}
	}
}
