// Command lintgate enforces the repo's determinism invariants that the
// stock toolchain (go vet, gofmt) does not cover. It is a stdlib-only
// multichecker — go/parser + go/types, no external analysis framework —
// over the packages whose outputs are pinned bit-for-bit by the
// determinism contract (ARCHITECTURE.md): internal/chess,
// internal/interp, internal/gen and internal/pool — plus the
// observability tier (internal/telemetry, internal/server), whose
// clock-injection contract is checked by the same machinery under a
// rule name of its own.
//
// Rules:
//
//   - wallclock: no time.Now / time.Since / time.Until. A wall-clock
//     read inside the search, the interpreter, the generator or the
//     worker pool is how "bit-identical across workers" quietly rots
//     into "usually identical".
//   - telemetryclock: the same wall-clock check, reported under the
//     invariant that applies to internal/telemetry and internal/server:
//     clocks arrive by injection (a clock field or parameter), never by
//     a direct read, so tests steer time and telemetry stays passive.
//     The only sanctioned direct read is installing time.Now as the
//     *default* for an injected clock, and that site carries an allow
//     with its justification.
//   - globalrand: no math/rand package-level functions (rand.Intn,
//     rand.Shuffle, rand.Seed, ...), which draw from the process-global
//     source. Explicitly seeded generators — rand.New(rand.NewSource(
//     seed)) — are the sanctioned idiom and pass.
//   - maporder: no text/output emission (fmt.Fprintf, fmt.Sprintf,
//     strings.Builder writes, io writes) inside a `for range` over a
//     map. Go map iteration order is deliberately random; folding it
//     into rendered output is nondeterminism wearing a costume.
//     Collect keys, sort, then render.
//
// A finding is suppressed only by an inline justification on the same
// line (or the line above):
//
//	start := time.Now() //lintgate:allow wallclock — diagnostic Elapsed only
//
// The justification text is mandatory: a bare "lintgate:allow
// wallclock" still fails, so every suppression records *why* the
// invariant does not apply.
//
// Usage: lintgate [dir ...] — with no arguments, the baked-in package
// list (deterministic + telemetry tiers, what CI runs). Exit 0 clean,
// 1 findings, 2 operational error.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// deterministicPkgs are the packages whose results the determinism
// contract pins; they must be reproducible bit-for-bit across
// machines, worker counts and runs.
var deterministicPkgs = []string{
	"internal/chess",
	"internal/interp",
	"internal/gen",
	"internal/pool",
}

// telemetryPkgs are the observability tier: their outputs need not be
// bit-identical (timestamps are real), but the clock itself must
// arrive by injection so tests and the determinism matrix can pin it.
// Their wall-clock findings report as "telemetryclock".
var telemetryPkgs = []string{
	"internal/telemetry",
	"internal/server",
}

// clockRuleFor picks the rule name the wall-clock check reports under
// for one directory: the telemetry tier gets "telemetryclock",
// everything else the determinism-contract "wallclock". Explicit
// command-line directories go through the same lookup, so
// `lintgate internal/server` agrees with the no-argument CI run.
func clockRuleFor(dir string) string {
	clean := filepath.ToSlash(filepath.Clean(dir))
	for _, t := range telemetryPkgs {
		if clean == t || strings.HasSuffix(clean, "/"+t) {
			return "telemetryclock"
		}
	}
	return "wallclock"
}

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		dirs = append(append([]string{}, deterministicPkgs...), telemetryPkgs...)
	}
	var all []Finding
	for _, dir := range dirs {
		fs, err := CheckDir(dir, clockRuleFor(dir))
		if err != nil {
			fmt.Fprintf(os.Stderr, "lintgate: %s: %v\n", dir, err)
			os.Exit(2)
		}
		all = append(all, fs...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Pos.Filename != all[j].Pos.Filename {
			return all[i].Pos.Filename < all[j].Pos.Filename
		}
		return all[i].Pos.Line < all[j].Pos.Line
	})
	for _, f := range all {
		rel := f.Pos.Filename
		if r, err := filepath.Rel(".", rel); err == nil {
			rel = r
		}
		fmt.Fprintf(os.Stderr, "%s:%d: [%s] %s\n", rel, f.Pos.Line, f.Rule, f.Message)
	}
	if len(all) > 0 {
		fmt.Fprintf(os.Stderr, "lintgate: %d finding(s) — fix, or suppress with //lintgate:allow <rule> plus a justification\n", len(all))
		os.Exit(1)
	}
	fmt.Printf("lintgate: OK — %d package(s) clean\n", len(dirs))
}
