// Command fuzz drives the generative workload subsystem: it
// manufactures seeded concurrency-bug programs (internal/gen),
// validates each one with the differential pipeline oracle — the
// witness interleaving crashes at the seeded site, and the full
// reproduction pipeline agrees bit-for-bit across workers {1,4} ×
// prune {off,on} and the deprecated Run shim — and shrinks every
// failure to a minimal counterexample.
//
// Usage:
//
//	fuzz -n 100 -seed 42              # check seeds 42..141
//	fuzz -n 100 -seed 1 -short       # CI budgets
//	fuzz -n 50 -out corpus.jsonl     # persist programs + ground truth
//	fuzz -in corpus.jsonl            # replay a saved corpus
//	fuzz -in corpus.jsonl -full      # replay + full oracle per entry
//	fuzz -v                          # one line per seed
//
// A corpus file (-out/-in) round-trips generated programs, seeds,
// ground truth and the discovered artifacts (witness schedule,
// pipeline outcome) to disk, so CI and developers replay the same
// corpus instead of re-discovering it — and a generator change that
// silently alters a persisted program is caught, not absorbed.
//
// When a seeded bug is missed by the pipeline, or a configuration
// diverges, fuzz shrinks the generating spec while the failure
// persists and writes the minimal program to -faildir as a
// ready-to-register workload file (a .go.txt snippet for
// internal/workloads; drop the .txt to register it).
//
// Exit status: 0 when every seed reproduced deterministically; 1 on a
// determinism violation, generator invariant breach or internal error;
// 2 when seeded bugs were missed (each reported with a shrunken
// counterexample).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"heisendump/internal/gen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fuzz: ")

	n := flag.Int("n", 100, "number of seeds to check")
	seed := flag.Int64("seed", 1, "first seed (seeds seed..seed+n-1 are checked)")
	short := flag.Bool("short", false, "reduced budgets for CI (same checks, smaller search/stress/witness caps)")
	outPath := flag.String("out", "", "write the checked programs + ground truth as a JSON-lines corpus")
	inPath := flag.String("in", "", "replay a saved corpus instead of generating (regenerate byte-identical, replay witnesses)")
	full := flag.Bool("full", false, "with -in: additionally run the full differential oracle on every entry")
	failDir := flag.String("faildir", "fuzz-failures", "directory for shrunken counterexample workload files")
	maxTries := flag.Int("maxtries", 0, "override the per-configuration schedule-search budget")
	verbose := flag.Bool("v", false, "print one line per seed")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	o := &gen.Oracle{TrialBudget: *maxTries}
	if *short {
		if o.TrialBudget == 0 {
			o.TrialBudget = 1500
		}
		o.StressBudget = 3000
		o.WitnessSeeds = 1500
	}

	if *inPath != "" {
		os.Exit(replayCorpus(ctx, o, *inPath, *full, *verbose))
	}
	os.Exit(run(ctx, o, *seed, *n, *outPath, *failDir, *verbose))
}

// run checks seeds seed..seed+n-1 and reports.
func run(ctx context.Context, o *gen.Oracle, seed int64, n int, outPath, failDir string, verbose bool) int {
	var entries []gen.Entry
	violations, missed, reproduced := 0, 0, 0
	checked := 0
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			log.Printf("cancelled after %d of %d seeds", checked, n)
			break
		}
		s := seed + int64(i)
		p := gen.Generate(s)
		v, err := o.Check(ctx, p)
		if err != nil {
			if ctx.Err() != nil {
				continue
			}
			log.Printf("%s: %v", p.Name, err)
			checked++
			violations++
			continue
		}
		checked++
		switch {
		case len(v.Divergences) > 0:
			violations++
			fmt.Printf("%s: FAIL\n", p.Name)
			for _, d := range v.Divergences {
				fmt.Printf("  %s\n", d)
			}
			reportCounterexample(o, p, failDir, "divergence", keepDiverging(ctx, o))
		case v.Missed:
			missed++
			fmt.Printf("%s: MISSED (bug is real: witness seed %d, %d steps; pipeline: %s after %d tries)\n",
				p.Name, v.Witness.Seed, len(v.Witness.Schedule), v.Outcomes[0].Failure, v.Outcomes[0].Tries)
			reportCounterexample(o, p, failDir, "miss", keepMiss(ctx, o))
		default:
			reproduced++
			if verbose {
				fmt.Printf("%s: ok (witness seed %d, reproduced in %d tries)\n",
					p.Name, v.Witness.Seed, v.Outcomes[0].Tries)
			}
			entries = append(entries, gen.EntryFor(v))
		}
	}
	if outPath != "" && ctx.Err() == nil {
		f, err := os.Create(outPath)
		if err != nil {
			log.Print(err)
			return 1
		}
		defer f.Close()
		if err := gen.WriteCorpus(f, entries); err != nil {
			log.Print(err)
			return 1
		}
		fmt.Printf("corpus: %d entries written to %s\n", len(entries), outPath)
	}
	fmt.Printf("checked %d seeds: %d reproduced deterministically, %d missed, %d violations\n",
		checked, reproduced, missed, violations)
	switch {
	case violations > 0 || ctx.Err() != nil:
		return 1
	case missed > 0:
		return 2
	}
	return 0
}

// keepMiss is the shrink predicate for an unreproduced bug: the
// candidate still has a witness (the bug is still real) and the
// canonical pipeline configuration still fails to reproduce it.
func keepMiss(ctx context.Context, o *gen.Oracle) func(*gen.Program) bool {
	return func(p *gen.Program) bool {
		v, err := o.Check(ctx, p)
		if err != nil || v == nil {
			return false
		}
		return v.Witness != nil && v.Missed && len(v.Divergences) == 0
	}
}

// keepDiverging is the shrink predicate for any oracle divergence —
// a determinism violation or a generator invariant breach (no witness,
// cooperative crash). Either way the candidate still fails the oracle,
// which is the property worth minimizing.
func keepDiverging(ctx context.Context, o *gen.Oracle) func(*gen.Program) bool {
	return func(p *gen.Program) bool {
		v, err := o.Check(ctx, p)
		if err != nil || v == nil {
			return false
		}
		return len(v.Divergences) > 0
	}
}

// reportCounterexample shrinks the failing program (when the failure
// predicate is stable enough to shrink against) and writes the result
// as a ready-to-register workload file.
func reportCounterexample(o *gen.Oracle, p *gen.Program, failDir, why string, keep func(*gen.Program) bool) {
	min, shrunk := p, false
	if keep(p) { // shrink only when the predicate is stable on the original
		min = gen.Build(gen.Shrink(p.Spec, keep))
		shrunk = true
	}
	if err := os.MkdirAll(failDir, 0o755); err != nil {
		log.Print(err)
		return
	}
	path := filepath.Join(failDir, fmt.Sprintf("%s.go.txt", min.Name))
	if err := os.WriteFile(path, []byte(workloadFile(min, why, shrunk)), 0o644); err != nil {
		log.Print(err)
		return
	}
	// Also print the program itself: on an ephemeral CI runner the
	// file is gone when the job ends, and the build log is all the
	// developer gets. A shrunken Spec is not derivable from any seed,
	// so the source below (and the file) is the only record of it.
	if shrunk {
		fmt.Printf("  shrunken counterexample (%d threads): %s\n", min.Threads, path)
		fmt.Printf("  minimal program (Generate(%d) yields the unshrunken original):\n", p.Seed)
	} else {
		fmt.Printf("  counterexample (%d threads, unshrunken: failure not stable under re-check): %s\n", min.Threads, path)
		fmt.Printf("  regenerate with seed %d, or register directly:\n", p.Seed)
	}
	for _, line := range strings.Split(strings.TrimRight(min.Source, "\n"), "\n") {
		fmt.Printf("    %s\n", line)
	}
}

// workloadFile renders a generated program as an internal/workloads
// registration snippet — the hand-off format for turning a fuzz
// finding into a permanent regression workload.
func workloadFile(p *gen.Program, why string, shrunk bool) string {
	ident := fmt.Sprintf("%d", p.Seed)
	if p.Seed < 0 {
		ident = fmt.Sprintf("N%d", -p.Seed) // a valid Go identifier fragment
	}
	provenance := fmt.Sprintf("seed %d", p.Seed)
	if shrunk {
		provenance = fmt.Sprintf("shrunk from seed %d's program; Generate(%d) yields the unshrunken original", p.Seed, p.Seed)
	}
	return fmt.Sprintf(`// Code generated by cmd/fuzz (%s counterexample, %s).
// Move into internal/workloads (dropping the .txt extension) to
// register it; then add it to the pinned tests it should join.
package workloads

import "heisendump/internal/interp"

var GenFail%s = register(&Workload{
	Name:        %q,
	BugID:       "gen-%d",
	Kind:        %q,
	Description: %q,
	Threads:     %d,
	Source: `+"`\n%s`"+`,
	Input: &interp.Input{},
})
`, why, provenance, ident, p.Name+"-min", p.Seed, p.Kind.String(), p.Description(), p.Threads, p.Source)
}

// replayCorpus verifies a saved corpus against the current tree.
func replayCorpus(ctx context.Context, o *gen.Oracle, path string, full, verbose bool) int {
	f, err := os.Open(path)
	if err != nil {
		log.Print(err)
		return 1
	}
	defer f.Close()
	entries, err := gen.ReadCorpus(f)
	if err != nil {
		log.Print(err)
		return 1
	}
	bad := 0
	for _, e := range entries {
		if ctx.Err() != nil {
			log.Print("cancelled")
			return 1
		}
		p, err := gen.VerifyEntry(e)
		if err != nil {
			fmt.Printf("%s: FAIL %v\n", e.Name, err)
			bad++
			continue
		}
		if full {
			// Replay at the budgets the entry was recorded under: a
			// search truncated by a smaller budget is not outcome
			// drift. Entries from older corpora without budgets fall
			// back to the command-line oracle's.
			eo := *o
			if e.TrialBudget > 0 {
				eo.TrialBudget = e.TrialBudget
			}
			if e.StressBudget > 0 {
				eo.StressBudget = e.StressBudget
			}
			v, err := eo.Check(ctx, p)
			if err != nil {
				if ctx.Err() != nil {
					log.Print("cancelled")
					return 1
				}
				log.Printf("%s: %v", e.Name, err)
				bad++
				continue
			}
			if len(v.Divergences) > 0 || v.Missed {
				fmt.Printf("%s: FAIL divergences=%v missed=%v\n", e.Name, v.Divergences, v.Missed)
				bad++
				continue
			}
			if v.Outcomes[0].Found != e.Found || v.Outcomes[0].Tries != e.Tries {
				fmt.Printf("%s: FAIL outcome drifted: found=%v tries=%d, corpus has found=%v tries=%d\n",
					e.Name, v.Outcomes[0].Found, v.Outcomes[0].Tries, e.Found, e.Tries)
				bad++
				continue
			}
		}
		if verbose {
			fmt.Printf("%s: ok\n", e.Name)
		}
	}
	fmt.Printf("corpus: %d entries, %d failed\n", len(entries), bad)
	if bad > 0 {
		return 1
	}
	return 0
}
