// Command reprod runs the full reproduction pipeline on a workload or
// a program source file, through the context-aware Session API.
//
// Usage:
//
//	reprod -w apache-1                       # built-in workload
//	reprod -src prog.hd                      # your own program
//	reprod -w mysql-3 -heuristic dep         # dependence-distance priorities
//	reprod -w mysql-3 -plain                 # undirected CHESS baseline
//	reprod -w mysql-3 -align instcount       # Table 5 alignment baseline
//	reprod -w apache-2 -timeout 30s          # deadline the whole run
//	reprod -w mysql-3 -trace run.json        # Chrome trace-event JSON
//	reprod -list                             # list workloads
//
// Ctrl-C (or the -timeout deadline) cancels the run cooperatively —
// the schedule search stops within one trial — and reprod prints the
// best-so-far partial report (Report.Partial) before exiting.
//
// Exit status: 0 when the failure was reproduced, 2 when the search
// completed without finding a schedule, 3 when the run was cancelled,
// 1 on any other error.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"heisendump"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("reprod: ")

	wname := flag.String("w", "", "built-in workload name (see -list)")
	srcPath := flag.String("src", "", "path to a program source file")
	heuristic := flag.String("heuristic", "temporal", `CSV prioritization: "temporal" or "dep"`)
	align := flag.String("align", "index", `aligned-point method: "index" or "instcount"`)
	plain := flag.Bool("plain", false, "use undirected CHESS (no weighting, no guidance)")
	bound := flag.Int("k", 2, "preemption bound")
	maxTries := flag.Int("maxtries", 5000, "schedule-search trial budget")
	workers := flag.Int("workers", 0, "schedule-search worker pool width (0 = GOMAXPROCS); the result is deterministic for any value")
	prune := flag.Bool("prune", false, "skip schedule trials proven equivalent to already-executed runs; the result is identical either way")
	fork := flag.Bool("fork", false, "resume schedule trials from cached prefix snapshots instead of step 0; the result is identical either way")
	timeout := flag.Duration("timeout", 0, "overall wall-clock deadline (0 = none); the deadline cancels like Ctrl-C")
	list := flag.Bool("list", false, "list built-in workloads")
	verbose := flag.Bool("v", false, "print the failure index, CSVs, candidates and stage transitions")
	flag.StringVar(&tracePath, "trace", "", "write the run as Chrome trace-event JSON to this file (open in chrome://tracing or Perfetto)")
	traceSample := flag.Int("trace-sample", 1, "with -trace, keep every n-th trial event (stage spans are always kept)")
	flag.Parse()

	if *list {
		for _, n := range heisendump.WorkloadNames() {
			w := heisendump.WorkloadByName(n)
			fmt.Printf("%-14s %-5s %s\n", n, w.Kind, w.Description)
		}
		return
	}

	var prog *heisendump.Program
	var input *heisendump.Input
	var err error
	switch {
	case *wname != "":
		w := heisendump.WorkloadByName(*wname)
		if w == nil {
			log.Fatalf("unknown workload %q (try -list)", *wname)
		}
		prog, err = w.Compile(true)
		if err != nil {
			log.Fatal(err)
		}
		input = w.Input
	case *srcPath != "":
		src, err := os.ReadFile(*srcPath)
		if err != nil {
			log.Fatal(err)
		}
		prog, err = heisendump.CompileSource(string(src), true)
		if err != nil {
			log.Fatal(err)
		}
		input = &heisendump.Input{}
	default:
		log.Fatal("need -w <workload> or -src <file> (or -list)")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	opts := []heisendump.Option{
		heisendump.WithBound(*bound),
		heisendump.WithTrialBudget(*maxTries),
		heisendump.WithPlainChess(*plain),
		heisendump.WithWorkers(*workers),
		heisendump.WithPrune(*prune),
		heisendump.WithFork(*fork),
	}
	if *heuristic == "dep" {
		opts = append(opts, heisendump.WithHeuristic(heisendump.Dependence))
	}
	if *align == "instcount" {
		opts = append(opts, heisendump.WithAlignment(heisendump.AlignByInstructionCount))
	}
	if *verbose {
		opts = append(opts, heisendump.WithObserver(heisendump.ObserverFuncs{
			StageFunc: func(s heisendump.Stage) { fmt.Printf("stage: %v\n", s) },
		}))
	}
	if tracePath != "" {
		tracer = heisendump.NewTracer(time.Now, *traceSample)
		opts = append(opts, heisendump.WithTrace(tracer))
	}
	// A flight recorder always rides along (it is observational and
	// cheap); its tail prints as evidence when the run fails or is cut
	// short.
	flight = heisendump.NewFlightRecorder(16)
	opts = append(opts, heisendump.WithFlightRecorder(flight))

	s := heisendump.NewCompiled(prog, input, opts...)

	// The staged Session calls keep the output streaming: each phase's
	// results print as soon as it completes, and a cancellation at any
	// point leaves everything printed so far as the partial report.
	fail, err := s.ProvokeFailure(ctx)
	if err != nil {
		exitOn(err)
	}
	fmt.Printf("failure: %s\n", fail.Signature.Reason)
	fmt.Printf("  at %s, thread %d\n", prog.FormatPC(fail.Dump.PC), fail.Dump.FailingThread)
	fmt.Printf("  calling context: %s\n", fail.Dump.CallingContext())
	fmt.Printf("  dump: %d bytes (stress seed %d, %d attempts)\n",
		fail.DumpBytes, fail.Seed, fail.Attempts)

	an, err := s.Analyze(ctx, fail)
	if err != nil {
		exitOn(err)
	}
	if an.FailureIndex != nil {
		fmt.Printf("failure index: len %d\n", an.IndexLen)
		if *verbose {
			fmt.Printf("  %s\n", an.FailureIndex.Format(prog))
		}
	}
	fmt.Printf("aligned point: %v after %d steps at %s\n",
		an.AlignKind, an.AlignSteps, prog.FormatPC(an.AlignPC))
	fmt.Printf("dump diff: %d compared (%d shared), %d differ, %d CSVs\n",
		an.Diff.VarsCompared, an.Diff.SharedCompared, len(an.Diff.Diffs), len(an.CSVs))
	if *verbose {
		for _, c := range an.CSVs {
			fmt.Printf("  CSV %-20s failing=%v passing=%v\n", c.Path, c.A, c.B)
		}
		fmt.Printf("preemption candidates: %d\n", len(an.Candidates))
	}

	res, err := s.Search(ctx, fail, an)
	if res != nil && res.Cancelled {
		fmt.Printf("cancelled mid-search: best-so-far partial result: found=%v after %d tries (%d runs executed)\n",
			res.Found, res.Tries, res.TrialsExecuted)
		printSchedule(res)
		exitOn(err)
	}
	if err != nil && !errors.Is(err, heisendump.ErrScheduleNotFound) {
		exitOn(err)
	}
	if !res.Found {
		fmt.Printf("NOT reproduced within %d tries (%v)\n", res.Tries, res.Elapsed)
		printFlight()
		writeTrace()
		os.Exit(2)
	}
	pruneNote := ""
	if res.TrialsPruned > 0 {
		pruneNote = fmt.Sprintf(", %d pruned as equivalent, %d distinct interleavings", res.TrialsPruned, res.DistinctRuns)
	}
	forkNote := ""
	if res.StepsSaved > 0 {
		forkNote = fmt.Sprintf(" (+%d replayed from snapshots)", res.StepsSaved)
	}
	fmt.Printf("reproduced: %d tries (%d runs executed on %d workers%s), %v, %d interpreter steps%s\n",
		res.Tries, res.TrialsExecuted, res.Workers, pruneNote, res.Elapsed, res.StepsExecuted, forkNote)
	printSchedule(res)
	writeTrace()
}

// tracePath/tracer/flight are shared with the exit paths: os.Exit
// bypasses defers, so every terminal print path flushes them
// explicitly.
var (
	tracePath string
	tracer    *heisendump.Tracer
	flight    *heisendump.FlightRecorder
)

// writeTrace flushes the Chrome trace-event JSON when -trace was
// given.
func writeTrace() {
	if tracer == nil {
		return
	}
	f, err := os.Create(tracePath)
	if err != nil {
		log.Print(err)
		return
	}
	werr := tracer.WriteJSON(f)
	cerr := f.Close()
	if werr != nil || cerr != nil {
		log.Printf("writing trace: %v", errors.Join(werr, cerr))
		return
	}
	fmt.Printf("trace: %d event(s) written to %s\n", tracer.Len(), tracePath)
}

// printFlight prints the flight recorder's tail — the last trials and
// scheduler decisions — as evidence on failed or cancelled runs.
func printFlight() {
	fl := flight.Snapshot()
	if fl == nil {
		return
	}
	dropped := ""
	if fl.TrialsDropped > 0 {
		dropped = fmt.Sprintf(" (%d older dropped)", fl.TrialsDropped)
	}
	fmt.Printf("flight recorder: last %d trial(s)%s:\n", len(fl.Trials), dropped)
	for _, t := range fl.Trials {
		disposition := "executed"
		switch {
		case t.Pruned:
			disposition = "pruned"
		case t.Forked:
			disposition = "forked"
		}
		fmt.Printf("  rank %d trial %d worker %d: %s steps=%d saved=%d found=%v\n",
			t.Rank, t.Trial, t.Worker, disposition, t.Steps, t.StepsSaved, t.Found)
	}
	if n := len(fl.Decisions); n > 0 {
		d := fl.Decisions[n-1]
		fmt.Printf("  last fold decision: %s at %d committed / %d tries (found=%v)\n",
			d.Kind, d.Committed, d.Tries, d.Found)
	}
}

func printSchedule(res *heisendump.SearchResult) {
	for _, ap := range res.Schedule {
		lock := ""
		if ap.Candidate.Lock != "" {
			lock = fmt.Sprintf(" lock %q", ap.Candidate.Lock)
		}
		fmt.Printf("  preempt thread %d at %v (sync #%d%s) -> thread %d\n",
			ap.Candidate.Thread, ap.Candidate.Kind, ap.Candidate.Seq, lock, ap.SwitchTo)
	}
}

// exitOn reports a terminal error: cancellation exits 3 with a note
// that everything already printed is the partial result; anything else
// is fatal.
func exitOn(err error) {
	if errors.Is(err, heisendump.ErrCancelled) {
		fmt.Printf("cancelled: %v\n", err)
		fmt.Println("(output above is the best-so-far partial result)")
		printFlight()
		writeTrace()
		os.Exit(3)
	}
	log.Fatal(err)
}
