// Command reprod runs the full reproduction pipeline on a workload or
// a program source file.
//
// Usage:
//
//	reprod -w apache-1                       # built-in workload
//	reprod -src prog.hd                      # your own program
//	reprod -w mysql-3 -heuristic dep         # dependence-distance priorities
//	reprod -w mysql-3 -plain                 # undirected CHESS baseline
//	reprod -w mysql-3 -align instcount       # Table 5 alignment baseline
//	reprod -list                             # list workloads
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"heisendump"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("reprod: ")

	wname := flag.String("w", "", "built-in workload name (see -list)")
	srcPath := flag.String("src", "", "path to a program source file")
	heuristic := flag.String("heuristic", "temporal", `CSV prioritization: "temporal" or "dep"`)
	align := flag.String("align", "index", `aligned-point method: "index" or "instcount"`)
	plain := flag.Bool("plain", false, "use undirected CHESS (no weighting, no guidance)")
	bound := flag.Int("k", 2, "preemption bound")
	maxTries := flag.Int("maxtries", 5000, "schedule-search cutoff")
	workers := flag.Int("workers", 0, "schedule-search worker pool width (0 = GOMAXPROCS); the result is deterministic for any value")
	prune := flag.Bool("prune", false, "skip schedule trials proven equivalent to already-executed runs; the result is identical either way")
	list := flag.Bool("list", false, "list built-in workloads")
	verbose := flag.Bool("v", false, "print the failure index, CSVs and candidates")
	flag.Parse()

	if *list {
		for _, n := range heisendump.WorkloadNames() {
			w := heisendump.WorkloadByName(n)
			fmt.Printf("%-14s %-5s %s\n", n, w.Kind, w.Description)
		}
		return
	}

	var prog *heisendump.Program
	var input *heisendump.Input
	var err error
	switch {
	case *wname != "":
		w := heisendump.WorkloadByName(*wname)
		if w == nil {
			log.Fatalf("unknown workload %q (try -list)", *wname)
		}
		prog, err = w.Compile(true)
		if err != nil {
			log.Fatal(err)
		}
		input = w.Input
	case *srcPath != "":
		src, err := os.ReadFile(*srcPath)
		if err != nil {
			log.Fatal(err)
		}
		prog, err = heisendump.CompileSource(string(src), true)
		if err != nil {
			log.Fatal(err)
		}
		input = &heisendump.Input{}
	default:
		log.Fatal("need -w <workload> or -src <file> (or -list)")
	}

	cfg := heisendump.Config{
		Bound:      *bound,
		MaxTries:   *maxTries,
		PlainChess: *plain,
		Workers:    *workers,
		Prune:      *prune,
	}
	if *heuristic == "dep" {
		cfg.Heuristic = heisendump.Dependence
	}
	if *align == "instcount" {
		cfg.Alignment = heisendump.AlignByInstructionCount
	}

	p := heisendump.NewPipeline(prog, input, cfg)

	fail, err := p.ProvokeFailure()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("failure: %s\n", fail.Signature.Reason)
	fmt.Printf("  at %s, thread %d\n", prog.FormatPC(fail.Dump.PC), fail.Dump.FailingThread)
	fmt.Printf("  calling context: %s\n", fail.Dump.CallingContext())
	fmt.Printf("  dump: %d bytes (stress seed %d, %d attempts)\n",
		fail.DumpBytes, fail.Seed, fail.Attempts)

	an, err := p.Analyze(fail)
	if err != nil {
		log.Fatal(err)
	}
	if an.FailureIndex != nil {
		fmt.Printf("failure index: len %d\n", an.IndexLen)
		if *verbose {
			fmt.Printf("  %s\n", an.FailureIndex.Format(prog))
		}
	}
	fmt.Printf("aligned point: %v after %d steps at %s\n",
		an.AlignKind, an.AlignSteps, prog.FormatPC(an.AlignPC))
	fmt.Printf("dump diff: %d compared (%d shared), %d differ, %d CSVs\n",
		an.Diff.VarsCompared, an.Diff.SharedCompared, len(an.Diff.Diffs), len(an.CSVs))
	if *verbose {
		for _, c := range an.CSVs {
			fmt.Printf("  CSV %-20s failing=%v passing=%v\n", c.Path, c.A, c.B)
		}
		fmt.Printf("preemption candidates: %d\n", len(an.Candidates))
	}

	res := p.Reproduce(fail, an)
	if !res.Found {
		fmt.Printf("NOT reproduced within %d tries (%v)\n", res.Tries, res.Elapsed)
		os.Exit(2)
	}
	pruneNote := ""
	if res.TrialsPruned > 0 {
		pruneNote = fmt.Sprintf(", %d pruned as equivalent, %d distinct interleavings", res.TrialsPruned, res.DistinctRuns)
	}
	fmt.Printf("reproduced: %d tries (%d runs executed on %d workers%s), %v, %d interpreter steps\n",
		res.Tries, res.TrialsExecuted, res.Workers, pruneNote, res.Elapsed, res.StepsExecuted)
	for _, ap := range res.Schedule {
		lock := ""
		if ap.Candidate.Lock != "" {
			lock = fmt.Sprintf(" lock %q", ap.Candidate.Lock)
		}
		fmt.Printf("  preempt thread %d at %v (sync #%d%s) -> thread %d\n",
			ap.Candidate.Thread, ap.Candidate.Kind, ap.Candidate.Seq, lock, ap.SwitchTo)
	}
}
