// Command benchtab regenerates the paper's evaluation tables and
// figures on the library's workloads.
//
// Usage:
//
//	benchtab                  # everything
//	benchtab -table 4         # one table (1-6)
//	benchtab -fig 10          # figure 10
//	benchtab -plaincap 5000   # raise the plain-CHESS cutoff
package main

import (
	"flag"
	"fmt"
	"os"

	"heisendump/internal/experiments"
)

func main() {
	table := flag.Int("table", 0, "regenerate one table (1-6); 0 = all")
	fig := flag.Int("fig", 0, "regenerate one figure (10); 0 = per -table")
	plainCap := flag.Int("plaincap", 2000, "plain-CHESS try cutoff (the 18-hour analogue)")
	reps := flag.Int("reps", 3, "repetitions for overhead timing")
	flag.Parse()

	out := os.Stdout
	all := *table == 0 && *fig == 0

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}

	if all || *table == 1 {
		rows, err := experiments.Table1()
		if err != nil {
			fail(err)
		}
		experiments.PrintTable1(out, rows)
		fmt.Fprintln(out)
	}
	if all || *table == 2 {
		rows, err := experiments.Table2()
		if err != nil {
			fail(err)
		}
		experiments.PrintTable2(out, rows)
		fmt.Fprintln(out)
	}
	if all || *table == 3 {
		rows, err := experiments.Table3()
		if err != nil {
			fail(err)
		}
		experiments.PrintTable3(out, rows)
		fmt.Fprintln(out)
	}
	if all || *table == 4 {
		rows, err := experiments.Table4(*plainCap)
		if err != nil {
			fail(err)
		}
		experiments.PrintTable4(out, rows)
		fmt.Fprintln(out)
	}
	if all || *table == 5 {
		rows, err := experiments.Table5(*plainCap)
		if err != nil {
			fail(err)
		}
		experiments.PrintTable5(out, rows)
		fmt.Fprintln(out)
	}
	if all || *table == 6 {
		rows, err := experiments.Table6()
		if err != nil {
			fail(err)
		}
		experiments.PrintTable6(out, rows)
		fmt.Fprintln(out)
	}
	if all || *fig == 10 {
		rows, err := experiments.Fig10(*reps)
		if err != nil {
			fail(err)
		}
		experiments.PrintFig10(out, rows)
	}
}
