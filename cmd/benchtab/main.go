// Command benchtab regenerates the paper's evaluation tables and
// figures on the library's workloads.
//
// Usage:
//
//	benchtab                  # everything
//	benchtab -table 4         # one table (1-6)
//	benchtab -fig 10          # figure 10
//	benchtab -plaincap 5000   # raise the plain-CHESS cutoff
//	benchtab -workers 8       # run up to 8 workloads concurrently
//	benchtab -prune           # equivalence-pruned searches (same rows,
//	                          # fewer executed trials)
//	benchtab -json > rows.json # machine-readable rows (one JSON object
//	                           # per table/figure) for perf tracking
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"heisendump/internal/experiments"
)

func main() {
	table := flag.Int("table", 0, "regenerate one table (1-6); 0 = all")
	fig := flag.Int("fig", 0, "regenerate one figure (10); 0 = per -table")
	plainCap := flag.Int("plaincap", 2000, "plain-CHESS try cutoff (the 18-hour analogue)")
	reps := flag.Int("reps", 3, "repetitions for overhead timing")
	workers := flag.Int("workers", 0, "concurrent workloads per table (0 = GOMAXPROCS)")
	prune := flag.Bool("prune", false, "enable equivalence pruning in the schedule searches (identical tries/found, fewer executed trials)")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON rows, one object per table/figure")
	flag.Parse()

	experiments.Workers = *workers
	experiments.Prune = *prune

	out := io.Writer(os.Stdout)
	all := *table == 0 && *fig == 0

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}

	enc := json.NewEncoder(os.Stdout)
	// emit renders one section: a JSON row object in -json mode, the
	// usual text table otherwise.
	emit := func(name string, rows any, print func()) {
		if *jsonOut {
			if err := enc.Encode(struct {
				Table string `json:"table"`
				Rows  any    `json:"rows"`
			}{name, rows}); err != nil {
				fail(err)
			}
			return
		}
		print()
		fmt.Fprintln(out)
	}

	if all || *table == 1 {
		rows, err := experiments.Table1()
		if err != nil {
			fail(err)
		}
		emit("table1", rows, func() { experiments.PrintTable1(out, rows) })
	}
	if all || *table == 2 {
		rows, err := experiments.Table2()
		if err != nil {
			fail(err)
		}
		emit("table2", rows, func() { experiments.PrintTable2(out, rows) })
	}
	if all || *table == 3 {
		rows, err := experiments.Table3()
		if err != nil {
			fail(err)
		}
		emit("table3", rows, func() { experiments.PrintTable3(out, rows) })
	}
	if all || *table == 4 {
		rows, err := experiments.Table4(*plainCap)
		if err != nil {
			fail(err)
		}
		emit("table4", rows, func() { experiments.PrintTable4(out, rows) })
	}
	if all || *table == 5 {
		rows, err := experiments.Table5(*plainCap)
		if err != nil {
			fail(err)
		}
		emit("table5", rows, func() { experiments.PrintTable5(out, rows) })
	}
	if all || *table == 6 {
		rows, err := experiments.Table6()
		if err != nil {
			fail(err)
		}
		emit("table6", rows, func() { experiments.PrintTable6(out, rows) })
	}
	if all || *fig == 10 {
		rows, err := experiments.Fig10(*reps)
		if err != nil {
			fail(err)
		}
		emit("fig10", rows, func() { experiments.PrintFig10(out, rows) })
	}
}
