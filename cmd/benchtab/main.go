// Command benchtab regenerates the paper's evaluation tables and
// figures on the library's workloads.
//
// Usage:
//
//	benchtab                  # everything
//	benchtab -table 4         # one table (1-6)
//	benchtab -fig 10          # figure 10
//	benchtab -plaincap 5000   # raise the plain-CHESS cutoff
//	benchtab -workers 8       # run up to 8 workloads concurrently
//	benchtab -prune           # equivalence-pruned searches (same rows,
//	                          # fewer executed trials)
//	benchtab -fork            # prefix-forked searches: trials resume
//	                          # from cached machine snapshots (same
//	                          # rows, fewer executed steps)
//	benchtab -generated       # add the curated generator-derived
//	                          # workloads as extra rows in tables 2-6
//	benchtab -json > rows.json # machine-readable rows (one JSON object
//	                           # per table/figure) for perf tracking
//	benchtab -interp          # add the per-engine interpreter cost
//	                          # section: allocs/step, ns/step, steps/s
//	                          # and search wall time for the bytecode
//	                          # and tree engines (gated as budgets by
//	                          # cmd/benchgate)
//	benchtab -static          # add the static-guidance comparison
//	                          # section: race/deadlock candidate counts
//	                          # and search tries with vs without the
//	                          # lockset analyzer's focus set (gated by
//	                          # cmd/benchgate)
//	benchtab -table -1 -static # a negative -table selects no numbered
//	                          # table, emitting only the opted-in
//	                          # sections (-interp / -static) — what the
//	                          # CI static-guidance gate runs
//	benchtab -timeout 2m      # give up after a wall-clock deadline
//	benchtab -progress        # stream search heartbeats to stderr
//	benchtab -trace run.json  # write pipeline stage spans and sampled
//	                          # trial events as Chrome trace-event JSON
//	                          # (open in chrome://tracing or Perfetto;
//	                          # -trace-sample thins the trial events)
//	benchtab -interp -cpuprofile cpu.pprof
//	                          # write a CPU profile of the run; with
//	                          # -interp alone this profiles the trial
//	                          # hot path (go tool pprof cpu.pprof)
//
// Ctrl-C (or the -timeout deadline) cancels cooperatively: in-flight
// searches stop within one trial, completed tables have already been
// printed, and benchtab exits with a note on what was cut short.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime/pprof"
	"sync"
	"syscall"
	"time"

	"heisendump/internal/chess"
	"heisendump/internal/core"
	"heisendump/internal/experiments"
	"heisendump/internal/telemetry"
)

func main() {
	table := flag.Int("table", 0, "regenerate one table (1-6); 0 = all")
	fig := flag.Int("fig", 0, "regenerate one figure (10); 0 = per -table")
	plainCap := flag.Int("plaincap", 2000, "plain-CHESS try cutoff (the 18-hour analogue)")
	reps := flag.Int("reps", 3, "repetitions for overhead timing")
	workers := flag.Int("workers", 0, "concurrent workloads per table (0 = GOMAXPROCS)")
	prune := flag.Bool("prune", false, "enable equivalence pruning in the schedule searches (identical tries/found, fewer executed trials)")
	fork := flag.Bool("fork", false, "enable prefix snapshot/forking in the schedule searches (identical tries/found, fewer executed steps)")
	generated := flag.Bool("generated", false, "add the curated generator-derived workloads (internal/gen) as extra rows in tables 2-6")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON rows, one object per table/figure")
	interpCost := flag.Bool("interp", false, "also measure per-engine interpreter cost: allocs/step, ns/step, steps/s and search wall time (the \"interp\" section cmd/benchgate gates)")
	static := flag.Bool("static", false, "also compare the schedule search with and without static race-analysis guidance (the \"static\" section cmd/benchgate gates)")
	timeout := flag.Duration("timeout", 0, "overall wall-clock deadline (0 = none)")
	progress := flag.Bool("progress", false, "stream per-workload schedule-search heartbeats to stderr")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the selected sections to this file")
	traceOut := flag.String("trace", "", "write pipeline stage spans and sampled trial events as Chrome trace-event JSON to this file")
	traceSample := flag.Int("trace-sample", 10, "with -trace, keep every n-th trial event (stage spans are always kept)")
	flag.Parse()

	experiments.Workers = *workers
	experiments.Prune = *prune
	experiments.Fork = *fork
	experiments.IncludeGenerated = *generated
	if *progress {
		experiments.Progress = progressPrinter()
	}
	if *traceOut != "" {
		experiments.Trace = telemetry.NewTracer(time.Now, *traceSample)
		// Flushed via defer like the CPU profile: fail() exits directly
		// and abandons a partial trace, the right trade for a gate
		// failure.
		defer func() {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchtab:", err)
				return
			}
			defer f.Close()
			if err := experiments.Trace.WriteJSON(f); err != nil {
				fmt.Fprintln(os.Stderr, "benchtab: writing trace:", err)
				return
			}
			fmt.Fprintf(os.Stderr, "benchtab: %d trace event(s) written to %s\n", experiments.Trace.Len(), *traceOut)
		}()
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtab:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "benchtab:", err)
			os.Exit(1)
		}
		// Stop via defer so the profile is flushed on the normal exit
		// path (LIFO: stop and flush, then close); fail() below exits
		// directly, abandoning a partial profile, which is the right
		// trade for a gate failure.
		defer f.Close()
		defer pprof.StopCPUProfile()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	out := io.Writer(os.Stdout)
	all := *table == 0 && *fig == 0

	fail := func(err error) {
		if errors.Is(err, core.ErrCancelled) || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintf(os.Stderr, "benchtab: cancelled, remaining sections skipped (%v)\n", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}

	enc := json.NewEncoder(os.Stdout)
	// emit renders one section: a JSON row object in -json mode, the
	// usual text table otherwise.
	emit := func(name string, rows any, print func()) {
		if *jsonOut {
			if err := enc.Encode(struct {
				Table string `json:"table"`
				Rows  any    `json:"rows"`
			}{name, rows}); err != nil {
				fail(err)
			}
			return
		}
		print()
		fmt.Fprintln(out)
	}

	if all || *table == 1 {
		rows, err := experiments.Table1(ctx)
		if err != nil {
			fail(err)
		}
		emit("table1", rows, func() { experiments.PrintTable1(out, rows) })
	}
	if all || *table == 2 {
		rows, err := experiments.Table2(ctx)
		if err != nil {
			fail(err)
		}
		emit("table2", rows, func() { experiments.PrintTable2(out, rows) })
	}
	if all || *table == 3 {
		rows, err := experiments.Table3(ctx)
		if err != nil {
			fail(err)
		}
		emit("table3", rows, func() { experiments.PrintTable3(out, rows) })
	}
	if all || *table == 4 {
		rows, err := experiments.Table4(ctx, *plainCap)
		if err != nil {
			fail(err)
		}
		emit("table4", rows, func() { experiments.PrintTable4(out, rows) })
	}
	if all || *table == 5 {
		rows, err := experiments.Table5(ctx, *plainCap)
		if err != nil {
			fail(err)
		}
		emit("table5", rows, func() { experiments.PrintTable5(out, rows) })
	}
	if all || *table == 6 {
		rows, err := experiments.Table6(ctx)
		if err != nil {
			fail(err)
		}
		emit("table6", rows, func() { experiments.PrintTable6(out, rows) })
	}
	if all || *fig == 10 {
		rows, err := experiments.Fig10(ctx, *reps)
		if err != nil {
			fail(err)
		}
		emit("fig10", rows, func() { experiments.PrintFig10(out, rows) })
	}
	if all || *interpCost {
		rows, err := experiments.InterpTable()
		if err != nil {
			fail(err)
		}
		emit("interp", rows, func() { experiments.PrintInterp(out, rows) })
	}
	if all || *static {
		rows, err := experiments.StaticTable(ctx, 0)
		if err != nil {
			fail(err)
		}
		emit("static", rows, func() { experiments.PrintStaticTable(out, rows) })
	}
}

// progressPrinter returns an experiments.Progress hook that streams
// heartbeats to stderr, throttled to one line per subject per 200ms
// (final Done lines always print). Concurrent subjects share the hook,
// so it serializes internally.
func progressPrinter() func(string, chess.Progress) {
	var mu sync.Mutex
	last := map[string]time.Time{}
	return func(subject string, p chess.Progress) {
		mu.Lock()
		defer mu.Unlock()
		if !p.Done && time.Since(last[subject]) < 200*time.Millisecond {
			return
		}
		last[subject] = time.Now()
		state := "searching"
		if p.Done {
			state = "done"
		}
		fmt.Fprintf(os.Stderr, "progress %-10s %-9s combos %d/%d  tries %d  executed %d  pruned %d  found=%v\n",
			subject, state, p.Committed, p.Combos, p.Tries, p.Executed, p.Pruned, p.Found)
	}
}
