// Command benchgate is the benchmark-regression gate: it compares a
// fresh `benchtab -json` stream (stdin) against the checked-in
// baseline snapshot and fails when any deterministic search-outcome
// field drifts. Gated fields are the row names (and, for the interp
// section, the engine), every Tries / Found / Reproduced column, and
// the static section's Races / Deadlocks candidate counts —
// the values the determinism contract pins for a given seed state —
// plus two classes of cost ceiling:
//
//   - AllocsPerStep and every StepsExecuted column gate as exact-ish
//     ceilings: the baseline value is a budget, a regression beyond a
//     small noise tolerance fails, improvements pass. StepsExecuted is
//     deterministic, so this pins the prefix-fork layer's win: a
//     fork-on run must never execute more interpreter steps than the
//     baseline it was snapshotted against.
//   - NsPerStep and SearchNs (including the fork-on SearchNsFork and
//     telemetry-on SearchNsTelemetry legs) gate as headroom ceilings:
//     a fresh value above baseline × timeHeadroom fails. The generous
//     factor absorbs machine-speed differences between the baseline
//     runner and CI while still catching a gross dispatch-loop
//     regression (an accidental per-step allocation, a lost
//     superinstruction, a de-inlined hot call — each worth far more
//     than the headroom).
//   - TelemetryOverhead gates as an absolute ratio ceiling (1.05):
//     both legs of the ratio run on the same machine, so it needs no
//     machine headroom — it pins the telemetry stack's passivity as a
//     cost budget, complementing the determinism tests.
//
// Other cost fields (table times, executed/pruned trial counts, steps,
// StepsSaved) are informational only and never gate.
//
// Usage (what CI runs):
//
//	benchtab -table 4 -interp -json | benchgate -baseline BENCH_baseline.json
//
// Only the tables present on stdin are compared, so gating one table
// against a full-run baseline works. When a PR intentionally moves the
// numbers, regenerate the baseline (see README.md) and review the diff.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "checked-in benchtab -json snapshot to gate against")
	tableFilter := flag.String("table", "", `compare only this table (e.g. "table4"); default: every table on stdin`)
	flag.Parse()

	f, err := os.Open(*baselinePath)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	baseline, err := parseSections(f)
	if err != nil {
		fatal(fmt.Errorf("baseline %s: %w", *baselinePath, err))
	}
	fresh, err := parseSections(os.Stdin)
	if err != nil {
		fatal(fmt.Errorf("stdin: %w", err))
	}
	if *tableFilter != "" {
		if _, ok := fresh[*tableFilter]; !ok {
			fatal(fmt.Errorf("table %q not present on stdin", *tableFilter))
		}
		fresh = map[string][]map[string]any{*tableFilter: fresh[*tableFilter]}
	}
	if len(fresh) == 0 {
		fatal(fmt.Errorf("no tables on stdin"))
	}

	diffs, checked := compare(fresh, baseline)
	for _, d := range diffs {
		fmt.Fprintln(os.Stderr, "benchgate: DRIFT:", d)
	}
	if len(diffs) > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d gated field(s) drifted from %s — if intentional, regenerate the baseline (see README.md)\n",
			len(diffs), *baselinePath)
		os.Exit(1)
	}
	names := make([]string, 0, len(fresh))
	for n := range fresh {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("benchgate: OK — %s unchanged (%d gated fields checked)\n", strings.Join(names, ", "), checked)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(2)
}

// parseSections decodes a benchtab -json stream: one
// {"table": ..., "rows": [...]} object per line. Numbers stay
// json.Number so comparisons never lose precision.
func parseSections(r io.Reader) (map[string][]map[string]any, error) {
	dec := json.NewDecoder(r)
	dec.UseNumber()
	out := map[string][]map[string]any{}
	for {
		var s struct {
			Table string           `json:"table"`
			Rows  []map[string]any `json:"rows"`
		}
		if err := dec.Decode(&s); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		if s.Table == "" {
			return nil, fmt.Errorf("section without a table name")
		}
		out[s.Table] = s.Rows
	}
	return out, nil
}

// rowID names a row in drift messages: tables key rows on either
// "Name" (workloads) or "Benchmark" (corpora).
func rowID(row map[string]any) any {
	if v, ok := row["Name"]; ok {
		return v
	}
	return row["Benchmark"]
}

// gated reports whether a row field participates in the regression
// gate: row identity (including the interp section's engine column —
// an engine leg silently vanishing from the table is drift), every
// deterministic search-outcome column (which covers the static
// section's BaseTries/StaticTries pair — the analyzer's guidance win
// is pinned exactly, per workload), the static section's candidate
// counts (Races/Deadlocks — the analyzer's verdicts are a pure
// function of the program), and the interpreter cost ceilings (see
// ceilingGated and budgetGated).
func gated(key string) bool {
	return key == "Name" || key == "Benchmark" || key == "Engine" ||
		strings.Contains(key, "Tries") ||
		strings.Contains(key, "Found") ||
		key == "Reproduced" ||
		key == "Races" || key == "Deadlocks" ||
		ceilingGated(key) ||
		budgetGated(key) ||
		ratioGated(key)
}

// ceilingGated marks fields gated as a numeric ceiling rather than by
// exact equality: the baseline is a budget, a fresh value above it
// (beyond allocTolerance) is a regression, and an improvement passes.
// Used for the interpreter's allocs/step, whose steady-state target is
// zero but whose measurement carries runtime noise, and for the
// deterministic StepsExecuted counts of the searching sections, where
// the ceiling pins the prefix-fork layer: forking (or any future
// executor change) may only ever reduce the interpreter steps a search
// executes.
func ceilingGated(key string) bool {
	return strings.Contains(key, "Allocs") || strings.Contains(key, "StepsExecuted")
}

// allocTolerance absorbs measurement noise in ceiling-gated fields
// (GC bookkeeping allocations attributed to the measured loop).
const allocTolerance = 0.01

// ceilingOK compares a ceiling-gated field: ok when both values parse
// as numbers and fresh is within tolerance of the baseline budget.
func ceilingOK(got, want any) bool {
	g, errG := toFloat(got)
	w, errW := toFloat(want)
	return errG == nil && errW == nil && g <= w+allocTolerance
}

// budgetGated marks timing fields gated as multiplicative-headroom
// ceilings: ns/step and search wall time, whose absolute values depend
// on the machine but whose order of magnitude is a property of the
// code.
func budgetGated(key string) bool {
	return strings.Contains(key, "NsPerStep") || strings.Contains(key, "SearchNs")
}

// timeHeadroom is the multiplicative budget for budget-gated timing
// fields: fresh ≤ baseline × timeHeadroom passes. Sized to absorb a
// slow CI runner, not a slow interpreter — the regressions this gate
// exists to catch (a per-step allocation on the dispatch path, a
// reversion to per-instruction trial stepping) cost well over 3×.
const timeHeadroom = 3.0

// budgetOK compares a budget-gated field.
func budgetOK(got, want any) bool {
	g, errG := toFloat(got)
	w, errW := toFloat(want)
	return errG == nil && errW == nil && g <= w*timeHeadroom
}

// ratioGated marks fields gated as absolute ratio ceilings,
// independent of the baseline's value: the interp section's
// TelemetryOverhead (telemetry-on / telemetry-off search wall time)
// must stay at or below the documented 1.05 ceiling on every run.
// Both legs run in the same process minutes apart, so machine speed
// cancels out of the ratio — no headroom factor is needed.
func ratioGated(key string) bool {
	return strings.Contains(key, "TelemetryOverhead")
}

// telemetryOverheadCeiling is the documented passivity budget:
// attaching the full telemetry stack may cost at most 5% search wall
// time.
const telemetryOverheadCeiling = 1.05

// ratioOK compares a ratio-gated field against its absolute ceiling.
func ratioOK(got any) bool {
	g, err := toFloat(got)
	return err == nil && g <= telemetryOverheadCeiling
}

func toFloat(v any) (float64, error) {
	if n, ok := v.(json.Number); ok {
		return n.Float64()
	}
	return 0, fmt.Errorf("not a number: %v", v)
}

// compare checks every gated field of every fresh table against the
// baseline, returning human-readable drift descriptions and the number
// of gated fields checked.
func compare(fresh, baseline map[string][]map[string]any) (diffs []string, checked int) {
	names := make([]string, 0, len(fresh))
	for n := range fresh {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		rows := fresh[name]
		base, ok := baseline[name]
		if !ok {
			diffs = append(diffs, fmt.Sprintf("%s: not in baseline", name))
			continue
		}
		if len(rows) != len(base) {
			diffs = append(diffs, fmt.Sprintf("%s: %d rows, baseline has %d", name, len(rows), len(base)))
			continue
		}
		for i, row := range rows {
			// The union of both rows' gated keys: a gated column that
			// disappears from the fresh output (or appears without a
			// baseline) is itself drift, not a silent pass.
			keySet := map[string]bool{}
			for k := range row {
				if gated(k) {
					keySet[k] = true
				}
			}
			for k := range base[i] {
				if gated(k) {
					keySet[k] = true
				}
			}
			keys := make([]string, 0, len(keySet))
			for k := range keySet {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				checked++
				got, inFresh := row[k]
				want, inBase := base[i][k]
				switch {
				case !inFresh:
					diffs = append(diffs, fmt.Sprintf("%s row %d (%v): gated field %s missing from fresh output (baseline %v)", name, i, rowID(base[i]), k, want))
				case !inBase:
					diffs = append(diffs, fmt.Sprintf("%s row %d (%v): gated field %s not in baseline", name, i, rowID(row), k))
				case ceilingGated(k):
					if !ceilingOK(got, want) {
						diffs = append(diffs, fmt.Sprintf("%s row %d (%v): %s = %v exceeds baseline budget %v", name, i, rowID(row), k, got, want))
					}
				case ratioGated(k):
					if !ratioOK(got) {
						diffs = append(diffs, fmt.Sprintf("%s row %d (%v): %s = %v exceeds the absolute ceiling %.2f", name, i, rowID(row), k, got, telemetryOverheadCeiling))
					}
				case budgetGated(k):
					if !budgetOK(got, want) {
						diffs = append(diffs, fmt.Sprintf("%s row %d (%v): %s = %v exceeds baseline %v × headroom %.1f", name, i, rowID(row), k, got, want, timeHeadroom))
					}
				case fmt.Sprint(got) != fmt.Sprint(want):
					diffs = append(diffs, fmt.Sprintf("%s row %d (%v): %s = %v, baseline %v", name, i, rowID(row), k, got, want))
				}
			}
		}
	}
	return diffs, checked
}
