package main

import (
	"strings"
	"testing"
)

const baselineDoc = `{"table":"table4","rows":[
  {"Name":"apache-1","ChessTries":44,"ChessFound":true,"TempTries":4,"TempFound":true,"TempTime":123456},
  {"Name":"apache-2","ChessTries":2000,"ChessFound":false,"TempTries":460,"TempFound":true,"TempTime":99}
]}
{"table":"table5","rows":[{"Name":"apache-1","Tries":7,"Reproduced":true,"Time":5}]}
`

func sections(t *testing.T, doc string) map[string][]map[string]any {
	t.Helper()
	out, err := parseSections(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestCompareIdenticalPasses(t *testing.T) {
	diffs, checked := compare(sections(t, baselineDoc), sections(t, baselineDoc))
	if len(diffs) != 0 {
		t.Fatalf("unexpected diffs: %v", diffs)
	}
	// table4: 2 rows x 5 gated fields; table5: 1 row x 3 gated fields.
	if checked != 13 {
		t.Fatalf("checked %d gated fields, want 13", checked)
	}
}

func TestCompareIgnoresCostFields(t *testing.T) {
	fresh := sections(t, strings.ReplaceAll(baselineDoc, `"TempTime":123456`, `"TempTime":777`))
	diffs, _ := compare(fresh, sections(t, baselineDoc))
	if len(diffs) != 0 {
		t.Fatalf("cost-field change gated: %v", diffs)
	}
}

func TestCompareCatchesTriesDrift(t *testing.T) {
	fresh := sections(t, strings.ReplaceAll(baselineDoc, `"TempTries":460`, `"TempTries":461`))
	diffs, _ := compare(fresh, sections(t, baselineDoc))
	if len(diffs) != 1 || !strings.Contains(diffs[0], "TempTries") {
		t.Fatalf("tries drift not caught: %v", diffs)
	}
}

func TestCompareCatchesFoundDrift(t *testing.T) {
	fresh := sections(t, strings.ReplaceAll(baselineDoc, `"ChessFound":false`, `"ChessFound":true`))
	diffs, _ := compare(fresh, sections(t, baselineDoc))
	if len(diffs) != 1 || !strings.Contains(diffs[0], "ChessFound") {
		t.Fatalf("found drift not caught: %v", diffs)
	}
}

func TestCompareCatchesDroppedGatedField(t *testing.T) {
	fresh := sections(t, strings.ReplaceAll(baselineDoc, `"TempFound":true,`, ``))
	diffs, _ := compare(fresh, sections(t, baselineDoc))
	if len(diffs) != 2 { // both table4 rows lost the column
		t.Fatalf("dropped gated field not caught: %v", diffs)
	}
	for _, d := range diffs {
		if !strings.Contains(d, "TempFound") || !strings.Contains(d, "missing from fresh") {
			t.Fatalf("unexpected diff: %q", d)
		}
	}
}

func TestCompareSubsetOfBaselineTables(t *testing.T) {
	fresh := sections(t, `{"table":"table4","rows":[
  {"Name":"apache-1","ChessTries":44,"ChessFound":true,"TempTries":4,"TempFound":true,"TempTime":1},
  {"Name":"apache-2","ChessTries":2000,"ChessFound":false,"TempTries":460,"TempFound":true,"TempTime":2}
]}`)
	diffs, _ := compare(fresh, sections(t, baselineDoc))
	if len(diffs) != 0 {
		t.Fatalf("gating one table against a full baseline failed: %v", diffs)
	}
}

const interpBaseline = `{"table":"interp","rows":[{"Name":"mysql-1","AllocsPerStep":0,"Steps":238}]}
`

// TestCompareAllocsCeiling: AllocsPerStep gates as a ceiling — noise
// within the tolerance and genuine improvements pass, a regression
// above the baseline budget fails.
func TestCompareAllocsCeiling(t *testing.T) {
	within := sections(t, strings.ReplaceAll(interpBaseline, `"AllocsPerStep":0`, `"AllocsPerStep":0.004`))
	diffs, checked := compare(within, sections(t, interpBaseline))
	if len(diffs) != 0 {
		t.Fatalf("noise within tolerance gated: %v", diffs)
	}
	if checked != 2 { // Name + AllocsPerStep
		t.Fatalf("checked %d gated fields, want 2", checked)
	}

	over := sections(t, strings.ReplaceAll(interpBaseline, `"AllocsPerStep":0`, `"AllocsPerStep":0.5`))
	diffs, _ = compare(over, sections(t, interpBaseline))
	if len(diffs) != 1 || !strings.Contains(diffs[0], "AllocsPerStep") || !strings.Contains(diffs[0], "budget") {
		t.Fatalf("allocs regression not caught: %v", diffs)
	}

	baselineWithBudget := strings.ReplaceAll(interpBaseline, `"AllocsPerStep":0`, `"AllocsPerStep":0.5`)
	improved := sections(t, interpBaseline)
	diffs, _ = compare(improved, sections(t, baselineWithBudget))
	if len(diffs) != 0 {
		t.Fatalf("allocs improvement gated: %v", diffs)
	}
}

// TestCompareAllocsNonNumeric: a ceiling-gated field that stops being
// numeric is drift, not a silent pass.
func TestCompareAllocsNonNumeric(t *testing.T) {
	fresh := sections(t, strings.ReplaceAll(interpBaseline, `"AllocsPerStep":0`, `"AllocsPerStep":"n/a"`))
	diffs, _ := compare(fresh, sections(t, interpBaseline))
	if len(diffs) != 1 || !strings.Contains(diffs[0], "AllocsPerStep") {
		t.Fatalf("non-numeric allocs field not caught: %v", diffs)
	}
}

const interpEngineBaseline = `{"table":"interp","rows":[{"Name":"mysql-1","Engine":"bytecode","AllocsPerStep":0,"NsPerStep":20,"StepsPerSec":50000000,"SearchNs":2500000,"Steps":238}]}
`

// TestCompareTimingHeadroom: NsPerStep and SearchNs gate as headroom
// ceilings — a slower machine (within the factor) and improvements
// pass, a gross regression fails.
func TestCompareTimingHeadroom(t *testing.T) {
	slower := strings.ReplaceAll(interpEngineBaseline, `"NsPerStep":20`, `"NsPerStep":55`)
	slower = strings.ReplaceAll(slower, `"SearchNs":2500000`, `"SearchNs":7000000`)
	diffs, checked := compare(sections(t, slower), sections(t, interpEngineBaseline))
	if len(diffs) != 0 {
		t.Fatalf("timing within headroom gated: %v", diffs)
	}
	if checked != 5 { // Name, Engine, AllocsPerStep, NsPerStep, SearchNs
		t.Fatalf("checked %d gated fields, want 5", checked)
	}

	gross := sections(t, strings.ReplaceAll(interpEngineBaseline, `"NsPerStep":20`, `"NsPerStep":65`))
	diffs, _ = compare(gross, sections(t, interpEngineBaseline))
	if len(diffs) != 1 || !strings.Contains(diffs[0], "NsPerStep") || !strings.Contains(diffs[0], "headroom") {
		t.Fatalf("ns/step regression not caught: %v", diffs)
	}

	grossSearch := sections(t, strings.ReplaceAll(interpEngineBaseline, `"SearchNs":2500000`, `"SearchNs":9000000`))
	diffs, _ = compare(grossSearch, sections(t, interpEngineBaseline))
	if len(diffs) != 1 || !strings.Contains(diffs[0], "SearchNs") {
		t.Fatalf("search-time regression not caught: %v", diffs)
	}

	improved := sections(t, strings.ReplaceAll(interpEngineBaseline, `"NsPerStep":20`, `"NsPerStep":5`))
	diffs, _ = compare(improved, sections(t, interpEngineBaseline))
	if len(diffs) != 0 {
		t.Fatalf("timing improvement gated: %v", diffs)
	}
}

// TestCompareEngineIsIdentity: the interp section's Engine column is a
// gated identity field — a leg swapping engines (or vanishing into a
// different engine's row) is drift, not a timing question.
func TestCompareEngineIsIdentity(t *testing.T) {
	fresh := sections(t, strings.ReplaceAll(interpEngineBaseline, `"Engine":"bytecode"`, `"Engine":"tree"`))
	diffs, _ := compare(fresh, sections(t, interpEngineBaseline))
	if len(diffs) != 1 || !strings.Contains(diffs[0], "Engine") {
		t.Fatalf("engine drift not caught: %v", diffs)
	}
}

const stepsBaseline = `{"table":"table4","rows":[{"Name":"apache-2","ChessTries":2000,"ChessFound":false,"ChessStepsExecuted":1500000,"ChessStepsSaved":0}]}
`

// TestCompareStepsExecutedCeiling: StepsExecuted columns gate as
// ceilings — a forked search executing fewer interpreter steps than
// the fork-off baseline passes (that is the win the gate preserves), a
// search executing more fails, and the StepsSaved companion column is
// informational.
func TestCompareStepsExecutedCeiling(t *testing.T) {
	diffs, checked := compare(sections(t, stepsBaseline), sections(t, stepsBaseline))
	if len(diffs) != 0 {
		t.Fatalf("identical steps gated: %v", diffs)
	}
	if checked != 4 { // Name, ChessTries, ChessFound, ChessStepsExecuted
		t.Fatalf("checked %d gated fields, want 4", checked)
	}

	improved := sections(t, strings.ReplaceAll(stepsBaseline, `"ChessStepsExecuted":1500000`, `"ChessStepsExecuted":600000`))
	diffs, _ = compare(improved, sections(t, stepsBaseline))
	if len(diffs) != 0 {
		t.Fatalf("steps improvement gated: %v", diffs)
	}

	regressed := sections(t, strings.ReplaceAll(stepsBaseline, `"ChessStepsExecuted":1500000`, `"ChessStepsExecuted":1500001`))
	diffs, _ = compare(regressed, sections(t, stepsBaseline))
	if len(diffs) != 1 || !strings.Contains(diffs[0], "ChessStepsExecuted") || !strings.Contains(diffs[0], "budget") {
		t.Fatalf("steps regression not caught: %v", diffs)
	}

	saved := sections(t, strings.ReplaceAll(stepsBaseline, `"ChessStepsSaved":0`, `"ChessStepsSaved":900000`))
	diffs, _ = compare(saved, sections(t, stepsBaseline))
	if len(diffs) != 0 {
		t.Fatalf("informational StepsSaved column gated: %v", diffs)
	}
}

func TestCompareMissingTableAndRowCount(t *testing.T) {
	fresh := sections(t, `{"table":"table9","rows":[{"Name":"x","Tries":1}]}`)
	diffs, _ := compare(fresh, sections(t, baselineDoc))
	if len(diffs) != 1 || !strings.Contains(diffs[0], "not in baseline") {
		t.Fatalf("missing table not caught: %v", diffs)
	}
	fresh = sections(t, `{"table":"table5","rows":[]}`)
	diffs, _ = compare(fresh, sections(t, baselineDoc))
	if len(diffs) != 1 || !strings.Contains(diffs[0], "rows") {
		t.Fatalf("row-count drift not caught: %v", diffs)
	}
}
