package heisendump_test

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"heisendump"
)

// runWithTelemetry reproduces one workload with the full telemetry
// stack optionally attached: an unsampled Tracer on a synthetic clock,
// and a FlightRecorder — the same consumers cmd/reprod and the batch
// server wire per run. It returns the report plus the consumers for
// inspection (nil when tele is off).
func runWithTelemetry(t *testing.T, prog *heisendump.Program, input *heisendump.Input,
	workers int, prune, fork, tele bool) (*heisendump.Report, *heisendump.Tracer, *heisendump.FlightRecorder) {
	t.Helper()
	opts := []heisendump.Option{
		heisendump.WithTrialBudget(4000),
		heisendump.WithWorkers(workers),
		heisendump.WithPrune(prune),
		heisendump.WithFork(fork),
	}
	var tr *heisendump.Tracer
	var fl *heisendump.FlightRecorder
	if tele {
		tr = heisendump.NewTracer(nil, 1) // nil clock: synthetic ticks, no wall-clock reads
		fl = heisendump.NewFlightRecorder(64)
		opts = append(opts, heisendump.WithTrace(tr), heisendump.WithFlightRecorder(fl))
	}
	rep, err := heisendump.NewCompiled(prog, input, opts...).Reproduce(context.Background())
	if err != nil {
		t.Fatalf("workers=%d prune=%v fork=%v tele=%v: %v", workers, prune, fork, tele, err)
	}
	return rep, tr, fl
}

// TestSessionTelemetryPassive is the telemetry passivity matrix: over
// workers {1,4} × prune {off,on} × fork {off,on}, attaching the full
// telemetry stack (tracer + flight recorder, with the global counters
// firing throughout) leaves Found, Tries and the winning Schedule
// bit-identical to the telemetry-off reference. This is the
// determinism half of the "telemetry is passive" claim; the cost half
// is benchgate's TelemetryOverhead ceiling.
func TestSessionTelemetryPassive(t *testing.T) {
	w, prog := compileWorkload(t, "mysql-3")
	ref, _, _ := runWithTelemetry(t, prog, w.Input, 1, false, false, false)
	if !ref.Search.Found {
		t.Fatalf("reference run did not reproduce in %d tries", ref.Search.Tries)
	}

	before := heisendump.MetricsSnapshot()
	for _, workers := range []int{1, 4} {
		for _, prune := range []bool{false, true} {
			for _, fork := range []bool{false, true} {
				for _, tele := range []bool{false, true} {
					name := fmt.Sprintf("w%d_prune=%v_fork=%v_tele=%v", workers, prune, fork, tele)
					rep, tr, fl := runWithTelemetry(t, prog, w.Input, workers, prune, fork, tele)
					if rep.Search.Found != ref.Search.Found ||
						rep.Search.Tries != ref.Search.Tries ||
						!reflect.DeepEqual(rep.Search.Schedule, ref.Search.Schedule) {
						t.Fatalf("%s diverged from the telemetry-off reference:\n  got  found=%v tries=%d %+v\n  want found=%v tries=%d %+v",
							name,
							rep.Search.Found, rep.Search.Tries, rep.Search.Schedule,
							ref.Search.Found, ref.Search.Tries, ref.Search.Schedule)
					}
					if !tele {
						continue
					}
					// The consumers actually observed the run.
					if tr.Len() == 0 {
						t.Errorf("%s: tracer recorded no events", name)
					}
					log := fl.Snapshot()
					if log == nil || len(log.Trials) == 0 {
						t.Errorf("%s: flight recorder empty", name)
					} else if d := log.Decisions; len(d) == 0 || !d[len(d)-1].Found {
						t.Errorf("%s: flight recorder's last decision is not the find: %+v", name, d)
					}
				}
			}
		}
	}

	// The global counters fired while the matrix ran: searches, trial
	// executions and interpreter steps all advanced.
	after := heisendump.MetricsSnapshot()
	for _, series := range []string{
		"heisen_chess_searches_total",
		"heisen_chess_searches_found_total",
		"heisen_chess_trials_executed_total",
		"heisen_chess_steps_executed_total",
	} {
		if after[series] <= before[series] {
			t.Errorf("counter %s did not advance over the matrix: %d -> %d", series, before[series], after[series])
		}
	}
}

// TestWriteMetricsFamilies: the facade's Prometheus export is
// well-formed text exposition covering the chess and interp families
// (the server families are covered end-to-end by cmd/heisend's smoke
// test, which scrapes a live /metrics).
func TestWriteMetricsFamilies(t *testing.T) {
	w, prog := compileWorkload(t, "fig1")
	if _, err := heisendump.NewCompiled(prog, w.Input).Reproduce(context.Background()); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := heisendump.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, family := range []string{
		"# TYPE heisen_chess_searches_total counter",
		"# TYPE heisen_chess_trial_steps histogram",
		"# TYPE heisen_interp_steps_total counter",
		"# TYPE heisen_progcache_hits_total counter",
		`heisen_interp_steps_total{engine="bytecode"}`,
	} {
		if !strings.Contains(text, family) {
			t.Errorf("metrics text missing %q", family)
		}
	}
	// Every sample line parses as "name[{labels}] value".
	for _, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 || !strings.HasPrefix(fields[0], "heisen_") {
			t.Errorf("malformed sample line %q", line)
		}
	}
}
