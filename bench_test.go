// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus ablations of the design decisions DESIGN.md calls
// out. Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark reports experiment-specific metrics alongside the
// usual timing; cmd/benchtab prints the same rows as tables.
package heisendump_test

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"heisendump"
	"heisendump/internal/chess"
	"heisendump/internal/core"
	"heisendump/internal/experiments"
	"heisendump/internal/interp"
	"heisendump/internal/sched"
	"heisendump/internal/slicing"
	"heisendump/internal/trace"
	"heisendump/internal/workloads"
)

// BenchmarkTable1CDClassification regenerates Table 1: control-
// dependence classification over the three synthetic corpora.
func BenchmarkTable1CDClassification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.Logf("%s: one=%.2f%% aggr=%.2f%% nonaggr=%.2f%% loop=%.2f%% (n=%d)",
					r.Benchmark, r.OneCD, r.AggrToOne, r.NotAggr, r.Loop, r.Total)
			}
		}
	}
}

// BenchmarkTable2Workloads regenerates Table 2: the studied bugs.
func BenchmarkTable2Workloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.Logf("%s id=%s %s steps=%d threads=%d", r.Name, r.BugID, r.Kind, r.Steps, r.Threads)
			}
		}
	}
}

// BenchmarkTable3DumpAnalysis regenerates Table 3: dump sizes,
// compared variables, CSVs and index lengths per bug.
func BenchmarkTable3DumpAnalysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table3(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.Logf("%s: dumps=%d/%dB vars=%d/%d shared=%d/%d len(idx)=%d align=%v",
					r.Name, r.FailDumpBytes, r.PassDumpBytes, r.VarsCompared, r.Diffs,
					r.SharedCompared, r.CSVs, r.IndexLen, r.AlignKind)
			}
		}
	}
}

// BenchmarkTable4ScheduleSearch regenerates Table 4: chess vs
// chessX+dep vs chessX+temporal tries and times.
func BenchmarkTable4ScheduleSearch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table4(context.Background(), 1000)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.Logf("%s: chess=%d(found=%v) dep=%d temporal=%d",
					r.Name, r.ChessTries, r.ChessFound, r.DepTries, r.TempTries)
			}
		}
	}
}

// BenchmarkTable5InstructionCount regenerates Table 5: the
// instruction-count alignment baseline.
func BenchmarkTable5InstructionCount(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table5(context.Background(), 1000)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.Logf("%s: instrs=%d shared=%d/%d tries=%d repro=%v",
					r.Name, r.ThreadInstrs, r.SharedCompared, r.CSVs, r.Tries, r.Reproduced)
			}
		}
	}
}

// BenchmarkTable6OtherCosts regenerates Table 6: one-time analysis
// costs (dump capture, diff, slicing).
func BenchmarkTable6OtherCosts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table6(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.Logf("%s: dump=%v diff=%v slice=%v reverse=%v align=%v",
					r.Name, r.DumpCapture, r.DumpDiff, r.Slicing, r.Reverse, r.Align)
			}
		}
	}
}

// BenchmarkFig10Overhead regenerates Fig. 10: loop-counter
// instrumentation overhead across the workloads and splash kernels.
func BenchmarkFig10Overhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig10(context.Background(), 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var sum float64
			for _, r := range rows {
				sum += r.Percent
			}
			b.Logf("average overhead %.2f%% over %d programs", sum/float64(len(rows)), len(rows))
		}
	}
}

// runSearch is a helper for the ablation benches: full pipeline on one
// workload under the given configuration, reporting tries.
func runSearch(b *testing.B, w *workloads.Workload, cfg core.Config) int {
	b.Helper()
	prog, err := w.Compile(true)
	if err != nil {
		b.Fatal(err)
	}
	p := core.NewPipeline(prog, w.Input, cfg)
	rep, err := p.Run()
	if err != nil {
		b.Fatal(err)
	}
	return rep.Search.Tries
}

// BenchmarkAblationAlignment (DESIGN.md D1) compares execution-index
// alignment against the instruction-count baseline on apache-1.
func BenchmarkAblationAlignment(b *testing.B) {
	w := workloads.Apache1
	for i := 0; i < b.N; i++ {
		ei := runSearch(b, w, core.Config{MaxTries: 2000})
		ic := runSearch(b, w, core.Config{MaxTries: 2000, Alignment: core.AlignByInstructionCount})
		if i == 0 {
			b.Logf("apache-1 tries: execution-index=%d instruction-count=%d", ei, ic)
		}
	}
}

// BenchmarkAblationPriority (D2) compares temporal vs dependence
// prioritization across the bug suite.
func BenchmarkAblationPriority(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var tTemp, tDep int
		for _, w := range workloads.Bugs() {
			tTemp += runSearch(b, w, core.Config{Heuristic: slicing.Temporal, MaxTries: 2000})
			tDep += runSearch(b, w, core.Config{Heuristic: slicing.Dependence, MaxTries: 2000})
		}
		if i == 0 {
			b.Logf("total tries: temporal=%d dependence=%d", tTemp, tDep)
		}
	}
}

// BenchmarkAblationThreadSelect (D3) disables the guided thread
// selection while keeping combination weighting, isolating the value
// of Algorithm 2's preempt() test. Implemented via the chess options:
// plain CHESS = unweighted+unguided; this ablation = weighted only.
func BenchmarkAblationThreadSelect(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var full, noGuide int
		for _, w := range workloads.Bugs() {
			prog, err := w.Compile(true)
			if err != nil {
				b.Fatal(err)
			}
			p := core.NewPipeline(prog, w.Input, core.Config{MaxTries: 2000})
			fail, err := p.ProvokeFailure()
			if err != nil {
				b.Fatal(err)
			}
			an, err := p.Analyze(fail)
			if err != nil {
				b.Fatal(err)
			}
			full += p.Reproduce(fail, an).Tries

			s := p.Searcher(fail, an)
			s.Opts.Guided = false
			noGuide += s.Search().Tries
		}
		if i == 0 {
			b.Logf("total tries: guided=%d unguided=%d", full, noGuide)
		}
	}
}

// BenchmarkAblationPreemptionBound (D4) sweeps the preemption bound k.
func BenchmarkAblationPreemptionBound(b *testing.B) {
	w := workloads.Apache2 // needs two preemptions
	for i := 0; i < b.N; i++ {
		results := map[int]bool{}
		for _, k := range []int{1, 2, 3} {
			prog, err := w.Compile(true)
			if err != nil {
				b.Fatal(err)
			}
			p := core.NewPipeline(prog, w.Input, core.Config{Bound: k, MaxTries: 3000})
			rep, err := p.Run()
			if err != nil {
				b.Fatal(err)
			}
			results[k] = rep.Search.Found
		}
		if i == 0 {
			b.Logf("apache-2 found: k=1:%v k=2:%v k=3:%v", results[1], results[2], results[3])
		}
	}
}

// BenchmarkSearchParallel measures the worker-pool schedule searcher
// on a Table-4-style search: plain CHESS (unweighted, unguided) on a
// Table 2 workload with an unmatchable target and a fixed try cutoff,
// so every run executes the same deterministic amount of trial work.
// Sub-benchmarks sweep the worker count; on a multi-core runner the
// all-cores variant should beat workers=1 by the trial-execution
// parallelism (the per-combination setup is amortized across the
// pool).
func BenchmarkSearchParallel(b *testing.B) {
	w := workloads.ByName("mysql-1")
	cp, err := w.Compile(true)
	if err != nil {
		b.Fatal(err)
	}
	rec := trace.NewRecorder()
	m := interp.New(cp, w.Input.Clone())
	m.MaxSteps = 1_000_000
	m.Hooks = rec
	if res := sched.Run(m, sched.NewCooperative()); res.Crashed {
		b.Fatalf("passing run crashed: %v", res.Crash)
	}
	cands := chess.DiscoverCandidates(cp, rec.Events)
	chess.Annotate(cands, nil)
	mkEng := func(eng interp.Engine) func() *interp.Machine {
		return func() *interp.Machine {
			mm := interp.New(cp, w.Input.Clone())
			mm.MaxSteps = 1_000_000
			mm.Engine = eng
			return mm
		}
	}

	run := func(b *testing.B, workers int, eng interp.Engine) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := &chess.Searcher{
				NewMachine: mkEng(eng),
				Candidates: cands,
				Target:     chess.FailureSignature{Reason: "never matches"},
				Opts: chess.Options{
					Bound:        2,
					MaxTries:     400,
					Workers:      workers,
					PassingSteps: int64(len(rec.Events)),
				},
			}
			res := s.Search()
			if res.Found {
				b.Fatal("found an unmatchable signature")
			}
			if i == 0 {
				b.Logf("tries=%d executed=%d combos=%d steps=%d",
					res.Tries, res.TrialsExecuted, res.CombinationsGenerated, res.StepsExecuted)
			}
		}
	}

	counts := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			run(b, workers, interp.EngineAuto)
		})
	}
	// The engine A/B at workers=1: the same search forced onto the tree
	// walker, so the bytecode engine's speedup is measurable on one
	// runner regardless of machine noise between benchmark sessions.
	b.Run("workers=1/engine=tree", func(b *testing.B) {
		run(b, 1, interp.EngineTree)
	})
}

// driveToCompletion steps m to completion under a minimal
// lowest-runnable policy, bypassing the scheduler/Result plumbing so
// the measurement isolates the interpreter's own per-step cost.
func driveToCompletion(m *interp.Machine) int64 {
	var steps int64
	for !m.Crashed() && !m.Done() {
		r := m.Runnable()
		if len(r) == 0 {
			break
		}
		ok, err := m.Step(r[0])
		if err != nil || !ok {
			break
		}
		steps++
	}
	return steps
}

// BenchmarkStepAllocs measures steady-state interpreter allocations:
// one machine re-executes a Table 2 workload via Machine.Reset, the
// regime of the schedule search's trial hot path. After the first run
// populates the free lists, the slot-addressed interpreter performs
// zero allocations per step — the "allocs/step" metric is what
// cmd/benchgate gates (see the "interp" baseline section).
func BenchmarkStepAllocs(b *testing.B) {
	w := workloads.ByName("mysql-1")
	cp, err := w.Compile(true)
	if err != nil {
		b.Fatal(err)
	}
	m := interp.New(cp, w.Input.Clone())
	driveToCompletion(m) // warm the free lists
	var steps int64
	b.ReportAllocs()
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Reset(m.Prog, m.SeedInput())
		steps += driveToCompletion(m)
	}
	b.StopTimer()
	runtime.ReadMemStats(&ms1)
	if steps > 0 {
		b.ReportMetric(float64(ms1.Mallocs-ms0.Mallocs)/float64(steps), "allocs/step")
		b.ReportMetric(float64(steps)/float64(b.N), "steps/op")
	}
}

// BenchmarkPipelineEndToEnd times the full pipeline on fig1, the
// library's hot path.
func BenchmarkPipelineEndToEnd(b *testing.B) {
	w := heisendump.WorkloadByName("fig1")
	prog, err := w.Compile(true)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := heisendump.NewPipeline(prog, w.Input, heisendump.Config{MaxTries: 500})
		rep, err := p.Run()
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Search.Found {
			b.Fatal("not reproduced")
		}
	}
}
